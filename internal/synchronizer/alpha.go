// Package synchronizer implements an Awerbuch-style synchronizer: it runs
// an unmodified synchronous round protocol on an asynchronous-style
// network by buffering messages per round and releasing a round to the
// inner protocol only once every process's message for that round has
// arrived. The paper's related-work section contrasts this translation
// approach [Awe85] with its own unification; implementing it makes the
// contrast concrete: the synchronizer works only in the failure-free case,
// whereas the pseudosphere analysis covers crashes.
package synchronizer

import (
	"fmt"
	"strconv"
	"strings"

	"pseudosphere/internal/sim"
)

// Alpha wraps a synchronous round protocol as a timed protocol for the
// asynchronous/semi-synchronous runtime. It assumes no failures: with a
// crash, a round would never fill and the synchronizer would stall (which
// a test demonstrates).
type Alpha struct {
	inner   sim.RoundProtocol
	self, n int

	round    int // round currently being assembled (1-based)
	sent     bool
	pending  map[int]map[int]string // round -> sender -> payload
	decided  bool
	decision string
}

// NewAlpha returns a timed-protocol factory that synchronizes instances
// produced by the given synchronous factory.
func NewAlpha(factory sim.ProtocolFactory) sim.TimedFactory {
	return func() sim.TimedProtocol {
		return &Alpha{inner: factory(), pending: make(map[int]map[int]string)}
	}
}

// Init implements sim.TimedProtocol.
func (a *Alpha) Init(self, n int, input string, timing sim.Timing) {
	a.self, a.n = self, n
	a.round = 1
	a.inner.Init(self, n, input)
}

// Deliver implements sim.TimedProtocol: payloads are tagged "round|body".
func (a *Alpha) Deliver(now, from int, payload string) {
	sep := strings.IndexByte(payload, '|')
	if sep < 0 {
		return // not a synchronizer message; ignore
	}
	r, err := strconv.Atoi(payload[:sep])
	if err != nil {
		return
	}
	byFrom, ok := a.pending[r]
	if !ok {
		byFrom = make(map[int]string, a.n)
		a.pending[r] = byFrom
	}
	byFrom[from] = payload[sep+1:]
}

// Step implements sim.TimedProtocol: broadcast the current round's message
// once, then wait for the round to fill before running the inner round.
func (a *Alpha) Step(now int) (string, bool, string) {
	if a.decided {
		return "", true, a.decision
	}
	if !a.sent {
		a.sent = true
		return fmt.Sprintf("%d|%s", a.round, a.inner.Message(a.round)), false, ""
	}
	byFrom := a.pending[a.round]
	if len(byFrom) < a.n {
		return "", false, "" // round not complete yet; keep waiting
	}
	for from := 0; from < a.n; from++ {
		a.inner.Deliver(a.round, from, byFrom[from])
	}
	delete(a.pending, a.round)
	decided, decision := a.inner.EndRound(a.round)
	if decided {
		a.decided, a.decision = true, decision
		return "", true, decision
	}
	a.round++
	a.sent = false
	return "", false, ""
}
