package synchronizer

import (
	"testing"

	"pseudosphere/internal/protocols"
	"pseudosphere/internal/sim"
)

// TestAlphaRunsFloodSet runs the unmodified FloodSet consensus protocol on
// the timed runtime through the synchronizer (failure-free) and checks it
// reaches the same decision as the native synchronous run.
func TestAlphaRunsFloodSet(t *testing.T) {
	inputs := []string{"c", "a", "b"}

	native, err := sim.RunSync(inputs, protocols.NewFloodSet(1), nil, 3)
	if err != nil {
		t.Fatal(err)
	}

	timing := sim.Timing{C1: 1, C2: 2, D: 3}
	run, err := sim.RunTimed(inputs, NewAlpha(protocols.NewFloodSet(1)), timing,
		sim.LockstepSchedule{Timing: timing}, nil, 500)
	if err != nil {
		t.Fatal(err)
	}
	if err := run.Outcome.CheckConsensus(); err != nil {
		t.Fatal(err)
	}
	for p := range inputs {
		if run.Outcome.Decisions[p] != native.Decisions[p] {
			t.Fatalf("process %d: synchronized decision %q differs from native %q",
				p, run.Outcome.Decisions[p], native.Decisions[p])
		}
	}
}

// TestAlphaVariedSpeeds checks the synchronizer tolerates heterogeneous
// step speeds: processes running at different legal rates still simulate
// the same synchronous execution.
func TestAlphaVariedSpeeds(t *testing.T) {
	inputs := []string{"2", "0", "1"}
	timing := sim.Timing{C1: 1, C2: 4, D: 2}
	sched := variedSchedule{timing: timing}
	run, err := sim.RunTimed(inputs, NewAlpha(protocols.NewFloodSet(1)), timing, sched, nil, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if err := run.Outcome.CheckConsensus(); err != nil {
		t.Fatal(err)
	}
	for p := range inputs {
		if run.Outcome.Decisions[p] != "0" {
			t.Fatalf("process %d decided %q, want 0", p, run.Outcome.Decisions[p])
		}
	}
}

// variedSchedule gives each process a different legal step interval and
// staggers delivery delays.
type variedSchedule struct {
	timing sim.Timing
}

func (s variedSchedule) StepInterval(p, k int) int {
	iv := s.timing.C1 + (p+k)%(s.timing.C2-s.timing.C1+1)
	return iv
}

func (s variedSchedule) Delay(from, to, sendTime int) int {
	return 1 + (from+to+sendTime)%s.timing.D
}

// TestAlphaStallsOnCrash demonstrates the known limitation the paper's
// related-work section points out: with a crash, the synchronizer's round
// never fills, so no survivor decides within the horizon.
func TestAlphaStallsOnCrash(t *testing.T) {
	inputs := []string{"c", "a", "b"}
	timing := sim.Timing{C1: 1, C2: 2, D: 3}
	crashes := sim.TimedCrashSchedule{0: {Time: 0}}
	run, err := sim.RunTimed(inputs, NewAlpha(protocols.NewFloodSet(1)), timing,
		sim.LockstepSchedule{Timing: timing}, crashes, 200)
	if err != nil {
		t.Fatal(err)
	}
	if len(run.DecidedAt) != 0 {
		t.Fatalf("synchronizer should stall under a crash; decisions: %v", run.Outcome.Decisions)
	}
}
