package syncmodel

import "testing"

func BenchmarkOneRound4ProcsK1(b *testing.B) {
	input := inputSimplex("a", "b", "c", "d")
	p := Params{PerRound: 1, Total: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := OneRound(input, p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOneRound5ProcsK2(b *testing.B) {
	input := inputSimplex("a", "b", "c", "d", "e")
	p := Params{PerRound: 2, Total: 2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := OneRound(input, p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTwoRounds4ProcsK1(b *testing.B) {
	input := inputSimplex("a", "b", "c", "d")
	p := Params{PerRound: 1, Total: 2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Rounds(input, p, 2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLemma15RHS(b *testing.B) {
	input := inputSimplex("a", "b", "c", "d")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Lemma15RHS(input, []int{1, 2}); err != nil {
			b.Fatal(err)
		}
	}
}
