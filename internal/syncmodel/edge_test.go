package syncmodel

import "testing"

func TestParamsValidate(t *testing.T) {
	if err := (Params{PerRound: -1, Total: 0}).Validate(); err == nil {
		t.Fatal("negative per-round bound accepted")
	}
	if err := (Params{PerRound: 0, Total: -1}).Validate(); err == nil {
		t.Fatal("negative total bound accepted")
	}
	if err := (Params{PerRound: 1, Total: 2}).Validate(); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
}

func TestOneRoundExactlyRejectsNonParticipant(t *testing.T) {
	input := inputSimplex("a", "b", "c")
	if _, err := OneRoundExactly(input, []int{7}); err == nil {
		t.Fatal("non-participant failure accepted")
	}
}

func TestOneRoundFullyHeardRejectsNonFailing(t *testing.T) {
	input := inputSimplex("a", "b", "c")
	if _, err := OneRoundFullyHeard(input, []int{0}, 1); err == nil {
		t.Fatal("forced process that is not failing accepted")
	}
}

func TestAllFailingYieldsEmpty(t *testing.T) {
	input := inputSimplex("a", "b")
	res, err := OneRoundExactly(input, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complex.IsEmpty() {
		t.Fatalf("no survivors should mean no vertices; got %v", res.Complex)
	}
}

func TestRoundsZeroAndNegative(t *testing.T) {
	input := inputSimplex("a", "b", "c")
	res, err := Rounds(input, Params{PerRound: 1, Total: 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Complex.Facets()) != 1 || res.Complex.Facets()[0].Dim() != 2 {
		t.Fatalf("S^0 should be the input closure; got %v", res.Complex)
	}
	if _, err := Rounds(input, Params{PerRound: 1, Total: 1}, -2); err == nil {
		t.Fatal("negative round count accepted")
	}
}

// TestZeroFailureBudgetIsDegenerate checks that with k=0 the one-round
// complex is a single simplex (the failure-free pseudosphere over
// singleton sets, per Lemma 4's first identity).
func TestZeroFailureBudgetIsDegenerate(t *testing.T) {
	input := inputSimplex("a", "b", "c")
	res, err := OneRound(input, Params{PerRound: 0, Total: 0})
	if err != nil {
		t.Fatal(err)
	}
	facets := res.Complex.Facets()
	if len(facets) != 1 || facets[0].Dim() != 2 {
		t.Fatalf("k=0 complex should be one triangle; got %v", facets)
	}
}

// TestTotalBelowPerRound checks the effective bound is the minimum of the
// two budgets.
func TestTotalBelowPerRound(t *testing.T) {
	input := inputSimplex("a", "b", "c")
	limited, err := OneRound(input, Params{PerRound: 2, Total: 1})
	if err != nil {
		t.Fatal(err)
	}
	exactlyOne, err := OneRound(input, Params{PerRound: 1, Total: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !limited.Complex.Equal(exactlyOne.Complex) {
		t.Fatal("Total=1 must cap PerRound=2 to one failure")
	}
}
