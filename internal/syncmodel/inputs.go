package syncmodel

import (
	"pseudosphere/internal/core"
	"pseudosphere/internal/pc"
)

// RoundsOverInputs returns S^r applied to the whole input complex
// psi(P^n; values): the union of S^r(S) over every input simplex S.
func RoundsOverInputs(n int, values []string, p Params, r int) (*pc.Result, error) {
	res := pc.NewResult()
	for _, s := range core.InputFacets(n, values) {
		sub, err := Rounds(s, p, r)
		if err != nil {
			return nil, err
		}
		res.Merge(sub)
	}
	return res, nil
}
