package syncmodel

import (
	"fmt"

	"pseudosphere/internal/pc"
	"pseudosphere/internal/views"

	"pseudosphere/internal/topology"
)

// LegacySerialRounds is the pre-engine serial construction of S^r(S),
// retained verbatim as a reference implementation: the differential tests
// pin the roundop engine's output against it hash for hash at every worker
// count. It shares oneRoundExactlyOptions (via appendOneRoundExactly) with
// the engine adapter, so the two paths differ only in enumeration
// machinery.
func LegacySerialRounds(input topology.Simplex, p Params, r int) (*pc.Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if r < 0 {
		return nil, fmt.Errorf("syncmodel: negative round count %d", r)
	}
	res := pc.NewResult()
	if err := legacyRoundsRec(res, pc.InputViews(input), p, r); err != nil {
		return nil, err
	}
	return res, nil
}

func legacyRoundsRec(res *pc.Result, cur []*views.View, p Params, r int) error {
	if r == 0 {
		res.AddFacet(cur)
		return nil
	}
	ids := make([]int, len(cur))
	for i, v := range cur {
		ids[i] = v.P
	}
	maxFail := min(p.PerRound, p.Total)
	for _, fail := range FailureSets(ids, maxFail) {
		scratch := pc.NewResult()
		if r == 1 {
			scratch = res
		}
		facets, err := appendOneRoundExactly(scratch, cur, fail, -1)
		if err != nil {
			// Not expected — fail is drawn from the participant ids — but
			// propagated rather than panicking so callers (and the cmd
			// tools above them) fail with a message, not a stack trace.
			return err
		}
		next := Params{PerRound: p.PerRound, Total: p.Total - len(fail)}
		for _, facet := range facets {
			if err := legacyRoundsRec(res, facet, next, r-1); err != nil {
				return err
			}
		}
	}
	return nil
}
