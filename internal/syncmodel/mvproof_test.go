package syncmodel

import (
	"testing"

	"pseudosphere/internal/homology"
	"pseudosphere/internal/topology"
)

// TestLemma16ViaMayerVietoris re-proves Lemma 16 the way the paper does:
// S^1(S^n) is the union of the pseudospheres S^1_K in lexicographic order,
// and iterating Theorem 2 over that order (with the Lemma 15 intersections
// checked homologically at each step) establishes the connectivity without
// ever computing the union's homology directly. The result must agree with
// the direct computation.
func TestLemma16ViaMayerVietoris(t *testing.T) {
	cases := []struct {
		n, k int
	}{
		{2, 1},
		{3, 1},
	}
	for _, c := range cases {
		input := inputSimplex("a", "b", "c", "d")[:c.n+1]
		var pieces []*topology.Complex
		for _, fail := range FailureSets(input.IDs(), c.k) {
			res, err := OneRoundExactly(input, fail)
			if err != nil {
				t.Fatal(err)
			}
			pieces = append(pieces, res.Complex)
		}
		target := c.n - (c.n - c.k) - 1 // = k-1
		proof := homology.ProveUnionConnectivity(pieces, target)
		if !proof.OK {
			t.Fatalf("n=%d k=%d: MV proof failed:\n%s", c.n, c.k, proof)
		}
		if len(proof.Steps) != len(pieces)-1 {
			t.Fatalf("proof has %d steps for %d pieces", len(proof.Steps), len(pieces))
		}
		// Cross-check against the direct computation.
		direct, err := OneRound(input, Params{PerRound: c.k, Total: c.k})
		if err != nil {
			t.Fatal(err)
		}
		if !homology.IsKConnected(direct.Complex, target) {
			t.Fatalf("n=%d k=%d: direct computation disagrees with the MV proof", c.n, c.k)
		}
	}
}

// TestMVProofFailsWhereLemmaFails: with n < 2k the ordered union stops
// satisfying the Theorem 2 hypotheses at some step, matching the
// sharpness results.
func TestMVProofFailsWhereLemmaFails(t *testing.T) {
	input := inputSimplex("a", "b", "c")
	n, k := 2, 2 // violates n >= 2k
	var pieces []*topology.Complex
	for _, fail := range FailureSets(input.IDs(), k) {
		res, err := OneRoundExactly(input, fail)
		if err != nil {
			t.Fatal(err)
		}
		if res.Complex.IsEmpty() {
			continue // all-fail sets contribute nothing
		}
		pieces = append(pieces, res.Complex)
	}
	target := n - (n - k) - 1 // = 1
	proof := homology.ProveUnionConnectivity(pieces, target)
	if proof.OK {
		t.Fatal("MV proof should fail when n < 2k")
	}
}
