package syncmodel

import (
	"pseudosphere/internal/roundop"
	"pseudosphere/internal/views"
)

// Operator returns the synchronous model as a round operator for the
// shared engine. One synchronous round has a branch per failure set K of
// size at most min(PerRound, Total), in the paper's order (by cardinality,
// then lexicographically); within a branch each survivor independently
// hears all survivors plus an arbitrary subset of K (Lemma 14). The
// branch's continuation rounds run with the failure budget reduced by |K|.
func (p Params) Operator() roundop.Operator {
	return syncOperator{p: p}
}

type syncOperator struct {
	p Params
}

func (o syncOperator) Branches(cur []*views.View) ([]roundop.Branch, error) {
	ids := make([]int, len(cur))
	for i, v := range cur {
		ids[i] = v.P
	}
	var out []roundop.Branch
	for _, fail := range FailureSets(ids, min(o.p.PerRound, o.p.Total)) {
		opts, err := oneRoundExactlyOptions(cur, fail, -1)
		if err != nil {
			return nil, err
		}
		if opts == nil {
			continue
		}
		next := Params{PerRound: o.p.PerRound, Total: o.p.Total - len(fail)}
		out = append(out, roundop.Branch{Opts: opts, Next: syncOperator{p: next}})
	}
	return out, nil
}
