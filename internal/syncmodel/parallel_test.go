package syncmodel

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"pseudosphere/internal/topology"
)

func parallelInput(n int) topology.Simplex {
	verts := make([]topology.Vertex, n+1)
	for i := range verts {
		verts[i] = topology.Vertex{P: i, Label: fmt.Sprintf("v%d", i)}
	}
	return mustSimplex(verts...)
}

// The parallel construction must agree bit for bit with the serial one for
// every worker count.
func TestRoundsParallelMatchesSerial(t *testing.T) {
	cases := []struct {
		n, k, f, r int
	}{
		{2, 1, 1, 1},
		{2, 1, 2, 2},
		{3, 1, 3, 2},
		{3, 2, 2, 1},
		{3, 3, 3, 1},
	}
	for _, tc := range cases {
		p := Params{PerRound: tc.k, Total: tc.f}
		want, err := Rounds(parallelInput(tc.n), p, tc.r)
		if err != nil {
			t.Fatalf("Rounds(n=%d k=%d f=%d r=%d): %v", tc.n, tc.k, tc.f, tc.r, err)
		}
		wantHash := want.Complex.CanonicalHash()
		for _, workers := range []int{1, 2, 3, 8, 64} {
			got, err := RoundsParallel(parallelInput(tc.n), p, tc.r, workers)
			if err != nil {
				t.Fatalf("RoundsParallel(n=%d k=%d f=%d r=%d w=%d): %v", tc.n, tc.k, tc.f, tc.r, workers, err)
			}
			if h := got.Complex.CanonicalHash(); h != wantHash {
				t.Errorf("n=%d k=%d f=%d r=%d workers=%d: hash mismatch with serial", tc.n, tc.k, tc.f, tc.r, workers)
			}
		}
	}
}

func TestOneRoundParallelMatchesOneRound(t *testing.T) {
	p := Params{PerRound: 1, Total: 3}
	want, err := OneRound(parallelInput(3), p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := OneRoundParallel(parallelInput(3), p, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got.Complex.CanonicalHash() != want.Complex.CanonicalHash() {
		t.Error("OneRoundParallel disagrees with OneRound")
	}
}

func TestRoundsParallelCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RoundsParallelCtx(ctx, parallelInput(3), Params{PerRound: 1, Total: 2}, 2, 4)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}
