package syncmodel

import (
	"testing"

	"pseudosphere/internal/homology"
	"pseudosphere/internal/task"
)

// TestLemma16SideConditionSharp shows the n >= 2k hypothesis matters: with
// n < 2k the one-round complex fails to reach the stated connectivity —
// in fact it disconnects, which is exactly what lets wait-free synchronous
// protocols start deciding.
func TestLemma16SideConditionSharp(t *testing.T) {
	cases := []struct {
		n, k int
	}{
		{2, 2}, // wait-free three processes
		{3, 2}, // 3 < 2k = 4
	}
	for _, c := range cases {
		input := inputSimplex("a", "b", "c", "d")[:c.n+1]
		res, err := OneRound(input, Params{PerRound: c.k, Total: c.k})
		if err != nil {
			t.Fatal(err)
		}
		target := c.n - (c.n - c.k) - 1 // = k-1
		if homology.IsKConnected(res.Complex, target) {
			t.Fatalf("n=%d k=%d < 2k: expected connectivity to fail at %d (betti %v)",
				c.n, c.k, target, homology.ReducedBettiZ2(res.Complex))
		}
	}
}

// TestLemma17SideConditionSharp shows n >= rk+k is needed: with the budget
// exhausted relative to n, the r-round complex disconnects.
func TestLemma17SideConditionSharp(t *testing.T) {
	input := inputSimplex("a", "b", "c")
	res, err := Rounds(input, Params{PerRound: 1, Total: 2}, 2) // n=2 < rk+k=3
	if err != nil {
		t.Fatal(err)
	}
	if homology.IsKConnected(res.Complex, 0) {
		t.Fatalf("n=2 k=1 r=2: expected disconnection (betti %v)",
			homology.ReducedBettiZ2(res.Complex))
	}
}

// TestDisconnectionEnablesDecision closes the loop: exactly where the
// connectivity lemma's hypothesis fails (n=2, f=2, k=1, r=2 — the n < f+k
// regime of Theorem 18, bound floor(f/k) = 2), a consensus decision map
// exists on the now-disconnected complex.
func TestDisconnectionEnablesDecision(t *testing.T) {
	res, err := RoundsOverInputs(2, []string{"0", "1"}, Params{PerRound: 1, Total: 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	ann := task.AnnotateViews(res.Complex, res.Views)
	dm, found, err := task.FindDecision(ann, 1, 0)
	if err != nil || !found {
		t.Fatalf("found=%v err=%v; Theorem 18 allows 2 rounds here (n < f+k)", found, err)
	}
	if err := task.CheckDecision(ann, dm, 1); err != nil {
		t.Fatal(err)
	}

	// And one round is still not enough: floor(f/k) = 2.
	one, err := RoundsOverInputs(2, []string{"0", "1"}, Params{PerRound: 1, Total: 2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	ann = task.AnnotateViews(one.Complex, one.Views)
	if _, found, err := task.FindDecision(ann, 1, 0); err != nil || found {
		t.Fatalf("found=%v err=%v; one round must not suffice", found, err)
	}
}
