// Package syncmodel implements Section 7 of the paper: the synchronous
// protocol complex. Computation proceeds in lockstep rounds; in each round
// at most k processes crash. A process that crashes in a round may have
// delivered its round message to an arbitrary subset of the survivors, so
// the complex of one-round executions in which exactly the set K fails is
// the pseudosphere psi(S\K; 2^K) (Lemma 14): each survivor is
// independently labeled with the subset of K it heard from. The one-round
// complex S^1 is the union of these pseudospheres over all K with |K| <= k;
// their pairwise-prefix intersections are again unions of pseudospheres
// (Lemma 15), giving (m-(n-k)-1)-connectivity when n >= 2k (Lemma 16) and,
// iterated, when n >= rk+k (Lemma 17). Connectivity yields the tight round
// lower bound for synchronous k-set agreement (Theorem 18).
package syncmodel

import (
	"fmt"
	"sort"

	"pseudosphere/internal/core"
	"pseudosphere/internal/pc"
	"pseudosphere/internal/roundop"
	"pseudosphere/internal/topology"
	"pseudosphere/internal/views"
)

// Params fixes the failure structure: at most PerRound crashes in any
// single round (the paper's k) and at most Total crashes over the whole
// execution (the paper's f).
type Params struct {
	PerRound int // k: maximum crashes per round
	Total    int // f: maximum crashes overall
}

// Validate checks the parameters.
func (p Params) Validate() error {
	if p.PerRound < 0 {
		return fmt.Errorf("syncmodel: per-round failure bound must be nonnegative, got %d", p.PerRound)
	}
	if p.Total < 0 {
		return fmt.Errorf("syncmodel: total failure bound must be nonnegative, got %d", p.Total)
	}
	return nil
}

// OneRoundExactly returns S^1_K(S): the complex of one-round executions
// starting from S in which exactly the processes in fail crash. Every
// survivor hears from every survivor (itself included) and independently
// from an arbitrary subset of fail. Failing processes contribute no
// vertices.
func OneRoundExactly(input topology.Simplex, fail []int) (*pc.Result, error) {
	res := pc.NewResult()
	if _, err := appendOneRoundExactly(res, pc.InputViews(input), fail, -1); err != nil {
		return nil, err
	}
	return res, nil
}

// OneRoundFullyHeard is OneRoundExactly restricted to executions in which
// every survivor hears from the failing process heardByAll. Under the
// Lemma 14 labeling (a survivor is labeled with the subset K - ids(M) of
// failing processes it did NOT hear), these executions form the
// pseudosphere psi(S\K; 2^{K-{P}}) appearing on the right-hand side of
// Lemma 15.
func OneRoundFullyHeard(input topology.Simplex, fail []int, heardByAll int) (*pc.Result, error) {
	res := pc.NewResult()
	if _, err := appendOneRoundExactly(res, pc.InputViews(input), fail, heardByAll); err != nil {
		return nil, err
	}
	return res, nil
}

// oneRoundExactlyOptions precomputes each survivor's admissible next views
// for the failure set fail: every survivor hears all survivors (plus
// forced, if set) and independently one subset of the remaining failing
// processes. views.Next and the vertex encoding run once per (survivor,
// subset) option. Returns nil options when no process survives.
func oneRoundExactlyOptions(cur []*views.View, fail []int, forced int) ([][]pc.Option, error) {
	failSet := make(map[int]bool, len(fail))
	byID := make(map[int]*views.View, len(cur))
	for _, v := range cur {
		byID[v.P] = v
	}
	for _, q := range fail {
		if _, ok := byID[q]; !ok {
			return nil, fmt.Errorf("syncmodel: failing process %d is not a participant", q)
		}
		failSet[q] = true
	}
	if forced >= 0 && !failSet[forced] {
		return nil, fmt.Errorf("syncmodel: forced process %d is not failing", forced)
	}
	var survivors []*views.View
	for _, v := range cur {
		if !failSet[v.P] {
			survivors = append(survivors, v)
		}
	}
	if len(survivors) == 0 {
		return nil, nil
	}
	optional := make([]int, 0, len(fail))
	for _, q := range fail {
		if q != forced {
			optional = append(optional, q)
		}
	}
	sort.Ints(optional)

	subsets := intSubsets(optional)
	opts := make([][]pc.Option, len(survivors))
	for i, sv := range survivors {
		opts[i] = make([]pc.Option, len(subsets))
		for si, sub := range subsets {
			heard := make(map[int]*views.View, len(survivors)+len(fail))
			for _, w := range survivors {
				heard[w.P] = w
			}
			if forced >= 0 {
				heard[forced] = byID[forced]
			}
			for _, q := range sub {
				heard[q] = byID[q]
			}
			opts[i][si] = pc.NewOption(views.Next(sv.P, heard))
		}
	}
	return opts, nil
}

// appendOneRoundExactly enumerates the one-round executions from cur in
// which exactly fail crashes; forced >= 0 additionally requires that every
// survivor hears from the failing process forced. Returns the facets as
// survivor view lists.
func appendOneRoundExactly(res *pc.Result, cur []*views.View, fail []int, forced int) ([][]*views.View, error) {
	opts, err := oneRoundExactlyOptions(cur, fail, forced)
	if err != nil || opts == nil {
		return nil, err
	}
	var facets [][]*views.View
	idx := make([]int, len(opts))
	verts := make([]topology.Vertex, len(opts))
	for {
		facet := make([]*views.View, len(opts))
		pc.FillFacet(facet, verts, opts, idx)
		res.AddFacetVertices(verts, facet)
		facets = append(facets, facet)
		if !pc.Advance(idx, opts) {
			break
		}
	}
	return facets, nil
}

// FailureSets enumerates the subsets of ids of size at most maxSize in the
// paper's order: by cardinality, then lexicographically.
func FailureSets(ids []int, maxSize int) [][]int {
	sorted := append([]int(nil), ids...)
	sort.Ints(sorted)
	var out [][]int
	n := len(sorted)
	if maxSize > n {
		maxSize = n
	}
	for size := 0; size <= maxSize; size++ {
		var acc []int
		var rec func(start int)
		rec = func(start int) {
			if len(acc) == size {
				out = append(out, append([]int(nil), acc...))
				return
			}
			for i := start; i < n; i++ {
				acc = append(acc, sorted[i])
				rec(i + 1)
				acc = acc[:len(acc)-1]
			}
		}
		rec(0)
	}
	return out
}

// OneRound returns S^1(S): the union of S^1_K(S) over all failure sets K
// of size at most min(PerRound, Total).
func OneRound(input topology.Simplex, p Params) (*pc.Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return roundop.OneRound(p.Operator(), input)
}

// Rounds returns S^r(S): r synchronous rounds with at most PerRound
// failures per round and Total failures overall. The decomposition follows
// the paper: the executions whose first-round failure set is K continue as
// an (r-1)-round, (Total-|K|)-faulty protocol among the survivors.
func Rounds(input topology.Simplex, p Params, r int) (*pc.Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if r < 0 {
		return nil, fmt.Errorf("syncmodel: negative round count %d", r)
	}
	return roundop.Rounds(p.Operator(), input, r)
}

// Lemma14Pseudosphere builds the abstract pseudosphere psi(S\K; 2^K) of
// Lemma 14, with vertex labels encoding subsets of K.
func Lemma14Pseudosphere(input topology.Simplex, fail []int) (*topology.Complex, error) {
	failSet := make(map[int]bool, len(fail))
	for _, q := range fail {
		failSet[q] = true
	}
	base := input.WithoutIDs(failSet)
	sets := make([][]string, len(base))
	subsets := core.SubsetsAtLeast(fail, 0)
	for i := range sets {
		sets[i] = subsets
	}
	return core.Pseudosphere(base, sets)
}

// Lemma14Map returns the explicit vertex isomorphism L of Lemma 14 from
// the enumerated S^1_K(S) onto psi(S\K; 2^K): L(P_i, M) = (s_i, K-ids(M)).
func Lemma14Map(oneRound *pc.Result, input topology.Simplex, fail []int) (topology.VertexMap, error) {
	failSet := make(map[int]bool, len(fail))
	for _, q := range fail {
		failSet[q] = true
	}
	m := make(topology.VertexMap, len(oneRound.Views))
	for vert, view := range oneRound.Views {
		heard := make(map[int]bool)
		for _, q := range view.HeardIDs() {
			heard[q] = true
		}
		var missing []int
		for _, q := range fail {
			if !heard[q] {
				missing = append(missing, q)
			}
		}
		label, ok := input.LabelOf(vert.P)
		if !ok {
			return nil, fmt.Errorf("syncmodel: vertex %v has no input vertex", vert)
		}
		base := topology.Vertex{P: vert.P, Label: label}
		m[vert] = core.VertexFor(base, core.EncodeIDSet(missing))
	}
	return m, nil
}

// Lemma15RHS builds the right-hand side of Lemma 15 for the failure set
// K_t = fail: the union over P in K_t of the executions of S^1_{K_t} in
// which every survivor hears P (the pseudospheres psi(S\K_t; 2^{K_t-{P}})
// under the Lemma 14 labeling). Comparing it with the concrete
// intersection of the prefix union and S^1_{K_t} verifies the lemma.
func Lemma15RHS(input topology.Simplex, fail []int) (*pc.Result, error) {
	res := pc.NewResult()
	for _, p := range fail {
		sub, err := OneRoundFullyHeard(input, fail, p)
		if err != nil {
			return nil, err
		}
		res.Merge(sub)
	}
	return res, nil
}

// intSubsets enumerates all subsets of the sorted slice xs.
func intSubsets(xs []int) [][]int {
	n := len(xs)
	out := make([][]int, 0, 1<<n)
	for mask := 0; mask < 1<<n; mask++ {
		var sub []int
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				sub = append(sub, xs[i])
			}
		}
		out = append(out, sub)
	}
	return out
}
