package syncmodel

import (
	"testing"

	"pseudosphere/internal/bounds"
	"pseudosphere/internal/homology"
	"pseudosphere/internal/task"
	"pseudosphere/internal/topology"
)

func inputSimplex(labels ...string) topology.Simplex {
	vs := make([]topology.Vertex, len(labels))
	for i, l := range labels {
		vs[i] = topology.Vertex{P: i, Label: l}
	}
	return mustSimplex(vs...)
}

// TestLemma14Isomorphism verifies Lemma 14: S^1_K(S) is isomorphic, via
// the paper's map L(P_i, M) = (s_i, K - ids(M)), to psi(S\K; 2^K).
func TestLemma14Isomorphism(t *testing.T) {
	input := inputSimplex("a", "b", "c", "d")
	for _, fail := range [][]int{{}, {0}, {2}, {0, 3}, {1, 2}} {
		oneRound, err := OneRoundExactly(input, fail)
		if err != nil {
			t.Fatalf("fail=%v: %v", fail, err)
		}
		ps, err := Lemma14Pseudosphere(input, fail)
		if err != nil {
			t.Fatalf("fail=%v: pseudosphere: %v", fail, err)
		}
		m, err := Lemma14Map(oneRound, input, fail)
		if err != nil {
			t.Fatalf("fail=%v: map: %v", fail, err)
		}
		if err := topology.VerifyIsomorphism(oneRound.Complex, ps, m); err != nil {
			t.Fatalf("fail=%v: Lemma 14 isomorphism: %v", fail, err)
		}
	}
}

// TestFigure3 reproduces Figure 3: the one-round three-process complex
// with at most one failure. Each process has 3 possible views (heard all,
// or missed exactly one of the two others), the failure-free execution is
// a single triangle, and each single-failure pseudosphere contributes 4
// edges of which one is a face of the triangle: 1 + 3*3 = 10 facets.
func TestFigure3(t *testing.T) {
	input := inputSimplex("a", "b", "c")
	res, err := OneRound(input, Params{PerRound: 1, Total: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.Complex.Vertices()); got != 9 {
		t.Fatalf("vertices = %d, want 9", got)
	}
	facets := res.Complex.Facets()
	var triangles, edges int
	for _, f := range facets {
		switch f.Dim() {
		case 2:
			triangles++
		case 1:
			edges++
		default:
			t.Fatalf("unexpected facet %v", f)
		}
	}
	if triangles != 1 || edges != 9 {
		t.Fatalf("facets: %d triangles, %d edges; want 1 and 9", triangles, edges)
	}
	// The failure-free pseudosphere is degenerate (a single simplex).
	ff, err := OneRoundExactly(input, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ff.Complex.Facets()) != 1 {
		t.Fatalf("failure-free complex has %d facets", len(ff.Complex.Facets()))
	}
}

// TestLemma15 verifies the intersection lemma concretely: for every
// failure set K_t (in the paper's order), the intersection of the union of
// the earlier complexes with S^1_{K_t} equals the union over P in K_t of
// the executions in which every survivor hears P.
func TestLemma15(t *testing.T) {
	cases := []struct {
		labels []string
		k      int
	}{
		{[]string{"a", "b", "c"}, 1},
		{[]string{"a", "b", "c", "d"}, 1},
		{[]string{"a", "b", "c", "d"}, 2},
	}
	for _, tc := range cases {
		input := inputSimplex(tc.labels...)
		sets := FailureSets(input.IDs(), tc.k)
		prefix := topology.NewComplex()
		for ti, fail := range sets {
			cur, err := OneRoundExactly(input, fail)
			if err != nil {
				t.Fatal(err)
			}
			if ti > 0 {
				lhs := prefix.Intersection(cur.Complex)
				rhs, err := Lemma15RHS(input, fail)
				if err != nil {
					t.Fatal(err)
				}
				if !lhs.Equal(rhs.Complex) {
					t.Fatalf("labels=%v k=%d K_t=%v: Lemma 15 violated:\nlhs %v\nrhs %v",
						tc.labels, tc.k, fail, lhs, rhs.Complex)
				}
			}
			prefix.UnionWith(cur.Complex)
		}
	}
}

// TestLemma16Connectivity verifies that S^1(S^m) is (m-(n-k)-1)-connected
// when n >= 2k.
func TestLemma16Connectivity(t *testing.T) {
	labels := []string{"a", "b", "c", "d", "e"}
	cases := []struct {
		n, k, m int
	}{
		{2, 1, 2},
		{3, 1, 3},
		{3, 1, 2},
		{4, 2, 4},
		{4, 1, 4},
	}
	for _, c := range cases {
		if c.n < 2*c.k {
			t.Fatalf("case %+v violates n >= 2k", c)
		}
		input := inputSimplex(labels[:c.n+1]...)
		sub := input[:c.m+1]
		res, err := OneRound(sub, Params{PerRound: c.k, Total: c.k})
		if err != nil {
			t.Fatal(err)
		}
		target := c.m - (c.n - c.k) - 1
		if !homology.IsKConnected(res.Complex, target) {
			t.Fatalf("n=%d k=%d m=%d: S^1 not %d-connected (betti %v)",
				c.n, c.k, c.m, target, homology.ReducedBettiZ2(res.Complex))
		}
	}
}

// TestLemma17Connectivity verifies the r-round version: S^r(S^m) is
// (m-(n-k)-1)-connected when n >= rk+k.
func TestLemma17Connectivity(t *testing.T) {
	labels := []string{"a", "b", "c", "d", "e"}
	cases := []struct {
		n, k, r, m int
	}{
		{2, 1, 1, 2},
		{3, 1, 2, 3},
		{3, 1, 2, 2},
		{4, 1, 3, 4},
		{4, 2, 1, 4},
	}
	for _, c := range cases {
		if c.n < c.r*c.k+c.k {
			t.Fatalf("case %+v violates n >= rk+k", c)
		}
		input := inputSimplex(labels[:c.n+1]...)
		sub := input[:c.m+1]
		res, err := Rounds(sub, Params{PerRound: c.k, Total: c.r * c.k}, c.r)
		if err != nil {
			t.Fatal(err)
		}
		target := c.m - (c.n - c.k) - 1
		if !homology.IsKConnected(res.Complex, target) {
			t.Fatalf("n=%d k=%d r=%d m=%d: S^r not %d-connected (betti %v)",
				c.n, c.k, c.r, c.m, target, homology.ReducedBettiZ2(res.Complex))
		}
	}
}

// TestTheorem18Boundary drives the round bound end to end on the smallest
// nontrivial instance: 3 processes, f=1, k=1 (consensus). Theorem 18 gives
// floor(1/1)+1 = 2 rounds; so one round admits no consensus map, while two
// rounds do.
func TestTheorem18Boundary(t *testing.T) {
	want, err := bounds.SyncRoundLowerBound(2, 1, 1)
	if err != nil || want != 2 {
		t.Fatalf("bound = %d, %v; want 2", want, err)
	}
	values := []string{"0", "1"}
	p := Params{PerRound: 1, Total: 1}

	oneRound, err := RoundsOverInputs(2, values, p, 1)
	if err != nil {
		t.Fatal(err)
	}
	ann := task.AnnotateViews(oneRound.Complex, oneRound.Views)
	if _, found, err := task.FindDecision(ann, 1, 0); err != nil || found {
		t.Fatalf("1-round consensus map found=%v err=%v; want none", found, err)
	}

	twoRounds, err := RoundsOverInputs(2, values, p, 2)
	if err != nil {
		t.Fatal(err)
	}
	ann = task.AnnotateViews(twoRounds.Complex, twoRounds.Views)
	dm, found, err := task.FindDecision(ann, 1, 0)
	if err != nil || !found {
		t.Fatalf("2-round consensus map found=%v err=%v; want one", found, err)
	}
	if err := task.CheckDecision(ann, dm, 1); err != nil {
		t.Fatalf("returned map does not solve consensus: %v", err)
	}
}

// TestRoundsRespectsTotalBudget checks that the total failure budget caps
// cumulative failures across rounds: with Total=1, two rounds can lose at
// most one process overall.
func TestRoundsRespectsTotalBudget(t *testing.T) {
	input := inputSimplex("a", "b", "c")
	res, err := Rounds(input, Params{PerRound: 1, Total: 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range res.Complex.Facets() {
		if f.Dim() < 1 {
			t.Fatalf("facet %v implies two failures with budget 1", f)
		}
	}
}

// TestFailureSetsOrder checks the paper's ordering: by cardinality, then
// lexicographic.
func TestFailureSetsOrder(t *testing.T) {
	got := FailureSets([]int{0, 1, 2}, 2)
	want := [][]int{{}, {0}, {1}, {2}, {0, 1}, {0, 2}, {1, 2}}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("at %d: got %v want %v", i, got[i], want[i])
		}
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("at %d: got %v want %v", i, got[i], want[i])
			}
		}
	}
}
