package task

import (
	"math"

	"pseudosphere/internal/topology"
	"pseudosphere/internal/views"
)

// AnnotateViews builds an Annotated complex from a protocol complex whose
// vertices carry full-information views: the allowed decision values at a
// vertex are exactly the input values visible in its view (see the
// Annotated documentation for why this is the validity constraint).
func AnnotateViews(c *topology.Complex, vm map[topology.Vertex]*views.View) *Annotated {
	allowed := make(map[topology.Vertex][]string, len(vm))
	for vert, view := range vm {
		if c.HasVertex(vert) {
			allowed[vert] = view.ValuesSeen()
		}
	}
	return &Annotated{Complex: c, Allowed: allowed}
}

// SearchSpaceLog2 returns log2 of the number of candidate decision maps of
// the annotated complex: the sum over vertices of log2 |Allowed(v)|. It is
// the budgeted-admission seam for the decision search — a query service
// compares it against a budget to refuse absurd searches upfront and to
// size the node limit it passes to FindDecision, without touching the
// exponentially larger object itself.
func SearchSpaceLog2(a *Annotated) float64 {
	bits := 0.0
	for _, v := range a.Complex.Vertices() {
		if n := len(a.Allowed[v]); n > 1 {
			bits += math.Log2(float64(n))
		}
	}
	return bits
}
