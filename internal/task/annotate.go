package task

import (
	"pseudosphere/internal/topology"
	"pseudosphere/internal/views"
)

// AnnotateViews builds an Annotated complex from a protocol complex whose
// vertices carry full-information views: the allowed decision values at a
// vertex are exactly the input values visible in its view (see the
// Annotated documentation for why this is the validity constraint).
func AnnotateViews(c *topology.Complex, vm map[topology.Vertex]*views.View) *Annotated {
	allowed := make(map[topology.Vertex][]string, len(vm))
	for vert, view := range vm {
		if c.HasVertex(vert) {
			allowed[vert] = view.ValuesSeen()
		}
	}
	return &Annotated{Complex: c, Allowed: allowed}
}
