package task

import (
	"fmt"
	"testing"

	"pseudosphere/internal/topology"
)

func benchAnnotated(chains int) *Annotated {
	c := topology.NewComplex()
	allowed := make(map[topology.Vertex][]string)
	for i := 0; i < chains; i++ {
		a := v(0, fmt.Sprintf("a%d", i))
		b := v(1, fmt.Sprintf("b%d", i))
		d := v(2, fmt.Sprintf("c%d", i))
		c.Add(mustSimplex(a, b, d))
		for _, vert := range []topology.Vertex{a, b, d} {
			allowed[vert] = []string{"0", "1", "2"}
		}
	}
	return &Annotated{Complex: c, Allowed: allowed}
}

func BenchmarkFindConsensus(b *testing.B) {
	ann := benchAnnotated(20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, found, err := FindDecision(ann, 1, 0); err != nil || !found {
			b.Fatal("expected solvable")
		}
	}
}

func BenchmarkFindDecisionK2(b *testing.B) {
	ann := benchAnnotated(20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, found, err := FindDecision(ann, 2, 0); err != nil || !found {
			b.Fatal("expected solvable")
		}
	}
}

func BenchmarkCheckDecision(b *testing.B) {
	ann := benchAnnotated(50)
	dm := make(DecisionMap)
	for _, vert := range ann.Complex.Vertices() {
		dm[vert] = "0"
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := CheckDecision(ann, dm, 1); err != nil {
			b.Fatal(err)
		}
	}
}
