package task

import (
	"pseudosphere/internal/topology"
)

// mustSimplex is topology.NewSimplex for statically-correct test
// inputs; it panics on error so call sites stay one-line literals.
func mustSimplex(vs ...topology.Vertex) topology.Simplex {
	s, err := topology.NewSimplex(vs...)
	if err != nil {
		panic(err)
	}
	return s
}
