package task

import (
	"fmt"

	"pseudosphere/internal/homology"
	"pseudosphere/internal/topology"
)

// Theorem9Obstructed evaluates the hypothesis of the paper's Theorem 9:
// with values V = {v_0, ..., v_k} (k+1 values), if for every nonempty
// subset U of V the protocol complex P(psi(P^n; U)) is (k-1)-connected,
// then the protocol cannot solve k-set agreement. build must return the
// protocol complex restricted to the input pseudosphere psi(P^n; U).
//
// The function returns true when the hypothesis holds (so k-set agreement
// is impossible on the protocol), and false when some restriction fails to
// be (k-1)-connected (the theorem is then silent).
func Theorem9Obstructed(build func(inputValues []string) *topology.Complex, values []string, k int) (bool, error) {
	if len(values) != k+1 {
		return false, fmt.Errorf("task: Theorem 9 needs exactly k+1 = %d values, got %d", k+1, len(values))
	}
	for _, u := range nonemptySubsets(values) {
		c := build(u)
		if !homology.IsKConnected(c, k-1) {
			return false, nil
		}
	}
	return true, nil
}

// Corollary10Obstructed evaluates the hypothesis of Corollary 10: if
// P(S^m) is (m-(n-k)-1)-connected for all m with n-f <= m <= n, then the
// protocol cannot solve k-set agreement in the presence of f failures.
// conn must return the protocol complex for an input simplex with m+1
// participating processes.
func Corollary10Obstructed(conn func(m int) *topology.Complex, n, f, k int) bool {
	lo := n - f
	if lo < 0 {
		lo = 0
	}
	for m := lo; m <= n; m++ {
		if !homology.IsKConnected(conn(m), m-(n-k)-1) {
			return false
		}
	}
	return true
}

// nonemptySubsets enumerates the nonempty subsets of values in a stable
// order.
func nonemptySubsets(values []string) [][]string {
	var out [][]string
	n := len(values)
	for mask := 1; mask < 1<<n; mask++ {
		var sub []string
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				sub = append(sub, values[i])
			}
		}
		out = append(out, sub)
	}
	return out
}
