package task

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
)

// FindDecisionCtx is FindDecision with cooperative cancellation: the
// backtracking search checks the context at every node and returns
// ctx.Err() once it fires. The k = 1 consensus procedure is polynomial
// and always runs to completion.
func FindDecisionCtx(ctx context.Context, a *Annotated, k int, nodeLimit int64) (DecisionMap, bool, error) {
	return FindDecisionParallelCtx(ctx, a, k, nodeLimit, 1)
}

// FindDecisionParallel is FindDecision with the k >= 2 backtracking search
// split across workers: the first decision variable's domain values become
// independent branches, each explored by its own goroutine with private
// assignment state over the shared read-only search setup.
//
// The branches share one atomic node budget (nodeLimit <= 0 means
// unlimited). When a branch succeeds, only higher-indexed branches are
// cancelled; lower-indexed branches run to completion and the
// lowest-indexed success supplies the returned map, so the decision map is
// independent of scheduling. With a node limit, a success found by any
// surviving branch wins even if another branch exhausted the budget — the
// map is still a valid certificate — and ErrSearchLimit is reported only
// when no branch succeeds.
func FindDecisionParallel(a *Annotated, k int, nodeLimit int64, workers int) (DecisionMap, bool, error) {
	return FindDecisionParallelCtx(context.Background(), a, k, nodeLimit, workers)
}

// FindDecisionParallelCtx is FindDecisionParallel threaded with a context:
// every branch's per-node abort probe additionally observes cancellation,
// so the search unwinds within one node expansion of ctx firing and the
// call returns ctx.Err() (unless some branch had already found a decision
// map, which is returned — it is a valid certificate regardless). With an
// uncancellable context the behavior is exactly FindDecisionParallel.
func FindDecisionParallelCtx(ctx context.Context, a *Annotated, k int, nodeLimit int64, workers int) (DecisionMap, bool, error) {
	if err := a.Validate(); err != nil {
		return nil, false, err
	}
	if a.Complex.IsEmpty() {
		return DecisionMap{}, true, nil
	}
	if k <= 0 {
		return nil, false, fmt.Errorf("task: k must be positive, got %d", k)
	}
	if k == 1 {
		dm, ok := findConsensus(a)
		return dm, ok, nil
	}
	if ctx.Done() == nil {
		if workers <= 1 {
			return findBacktracking(a, k, nodeLimit)
		}
		return findBacktrackingParallel(a, k, nodeLimit, workers, nil)
	}
	var cancelled atomic.Bool
	stop := context.AfterFunc(ctx, func() { cancelled.Store(true) })
	defer stop()
	var dm DecisionMap
	var ok bool
	var err error
	if workers <= 1 {
		dm, ok, err = findBacktrackingCancellable(a, k, nodeLimit, &cancelled)
	} else {
		dm, ok, err = findBacktrackingParallel(a, k, nodeLimit, workers, &cancelled)
	}
	if !ok && cancelled.Load() {
		if cerr := ctx.Err(); cerr != nil {
			return nil, false, cerr
		}
	}
	return dm, ok, err
}

// findBacktrackingCancellable is findBacktracking with a cancellation flag
// probed at every node.
func findBacktrackingCancellable(a *Annotated, k int, nodeLimit int64, cancelled *atomic.Bool) (DecisionMap, bool, error) {
	s := newSearch(a, k)
	b := &branchRun{
		s:        s,
		assign:   make([]string, len(s.verts)),
		assigned: make([]bool, len(s.verts)),
		abort:    cancelled.Load,
	}
	if nodeLimit > 0 {
		remaining := nodeLimit
		b.budget = &remaining
	}
	ok, err := b.rec(0)
	if err == errAborted {
		// Cancellation unwound the search; the caller translates the flag
		// into ctx.Err().
		return nil, false, nil
	}
	if err != nil {
		return nil, false, err
	}
	if !ok {
		return nil, false, nil
	}
	return b.decisionMap(), true, nil
}

// branchOutcome records one first-variable branch's result.
type branchOutcome struct {
	dm  DecisionMap
	ok  bool
	err error
}

// findBacktrackingParallel runs the branch-split search; a non-nil
// cancelled flag is folded into every branch's abort probe, and a
// cancellation unwind surfaces as (nil, false, nil) for the caller to
// translate into ctx.Err().
func findBacktrackingParallel(a *Annotated, k int, nodeLimit int64, workers int, cancelled *atomic.Bool) (DecisionMap, bool, error) {
	s := newSearch(a, k)
	if len(s.order) == 0 {
		return DecisionMap{}, true, nil
	}
	v0 := s.order[0]
	dom := s.domains[v0]
	if len(dom) < 2 {
		if cancelled != nil {
			return findBacktrackingCancellable(a, k, nodeLimit, cancelled)
		}
		return findBacktracking(a, k, nodeLimit)
	}
	var remaining *int64
	if nodeLimit > 0 {
		r := nodeLimit
		remaining = &r
	}
	// best holds the lowest branch index that has succeeded so far; branches
	// above it abort at their next node.
	best := int64(len(dom))
	outcomes := make([]branchOutcome, len(dom))
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for bi, val := range dom {
		wg.Add(1)
		go func(bi int, val string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if atomic.LoadInt64(&best) < int64(bi) || (cancelled != nil && cancelled.Load()) {
				outcomes[bi] = branchOutcome{err: errAborted}
				return
			}
			abort := func() bool { return atomic.LoadInt64(&best) < int64(bi) }
			if cancelled != nil {
				abort = func() bool {
					return cancelled.Load() || atomic.LoadInt64(&best) < int64(bi)
				}
			}
			b := &branchRun{
				s:        s,
				assign:   make([]string, len(s.verts)),
				assigned: make([]bool, len(s.verts)),
				budget:   remaining,
				abort:    abort,
			}
			// The root assignment consumes one node, as in the serial loop.
			if b.budget != nil && atomic.AddInt64(b.budget, -1) < 0 {
				outcomes[bi] = branchOutcome{err: ErrSearchLimit}
				return
			}
			b.assign[v0] = val
			b.assigned[v0] = true
			if !consistent(v0, s.facetOf, s.facetVerts, b.assign, b.assigned, s.domains, s.k) {
				return
			}
			ok, err := b.rec(1)
			if ok {
				// Lower the bar to this branch if no lower branch has won yet.
				for {
					cur := atomic.LoadInt64(&best)
					if cur < int64(bi) || atomic.CompareAndSwapInt64(&best, cur, int64(bi)) {
						break
					}
				}
				outcomes[bi] = branchOutcome{dm: b.decisionMap(), ok: true}
				return
			}
			outcomes[bi] = branchOutcome{err: err}
		}(bi, val)
	}
	wg.Wait()
	limited := false
	for _, o := range outcomes {
		if o.ok {
			return o.dm, true, nil
		}
		if o.err == ErrSearchLimit {
			limited = true
		}
	}
	if limited {
		return nil, false, ErrSearchLimit
	}
	return nil, false, nil
}
