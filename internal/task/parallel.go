package task

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// FindDecisionParallel is FindDecision with the k >= 2 backtracking search
// split across workers: the first decision variable's domain values become
// independent branches, each explored by its own goroutine with private
// assignment state over the shared read-only search setup.
//
// The branches share one atomic node budget (nodeLimit <= 0 means
// unlimited). When a branch succeeds, only higher-indexed branches are
// cancelled; lower-indexed branches run to completion and the
// lowest-indexed success supplies the returned map, so the decision map is
// independent of scheduling. With a node limit, a success found by any
// surviving branch wins even if another branch exhausted the budget — the
// map is still a valid certificate — and ErrSearchLimit is reported only
// when no branch succeeds.
func FindDecisionParallel(a *Annotated, k int, nodeLimit int64, workers int) (DecisionMap, bool, error) {
	if err := a.Validate(); err != nil {
		return nil, false, err
	}
	if a.Complex.IsEmpty() {
		return DecisionMap{}, true, nil
	}
	if k <= 0 {
		return nil, false, fmt.Errorf("task: k must be positive, got %d", k)
	}
	if k == 1 {
		dm, ok := findConsensus(a)
		return dm, ok, nil
	}
	if workers <= 1 {
		return findBacktracking(a, k, nodeLimit)
	}
	return findBacktrackingParallel(a, k, nodeLimit, workers)
}

// branchOutcome records one first-variable branch's result.
type branchOutcome struct {
	dm  DecisionMap
	ok  bool
	err error
}

func findBacktrackingParallel(a *Annotated, k int, nodeLimit int64, workers int) (DecisionMap, bool, error) {
	s := newSearch(a, k)
	if len(s.order) == 0 {
		return DecisionMap{}, true, nil
	}
	v0 := s.order[0]
	dom := s.domains[v0]
	if len(dom) < 2 {
		return findBacktracking(a, k, nodeLimit)
	}
	var remaining *int64
	if nodeLimit > 0 {
		r := nodeLimit
		remaining = &r
	}
	// best holds the lowest branch index that has succeeded so far; branches
	// above it abort at their next node.
	best := int64(len(dom))
	outcomes := make([]branchOutcome, len(dom))
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for bi, val := range dom {
		wg.Add(1)
		go func(bi int, val string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if atomic.LoadInt64(&best) < int64(bi) {
				outcomes[bi] = branchOutcome{err: errAborted}
				return
			}
			b := &branchRun{
				s:        s,
				assign:   make([]string, len(s.verts)),
				assigned: make([]bool, len(s.verts)),
				budget:   remaining,
				abort:    func() bool { return atomic.LoadInt64(&best) < int64(bi) },
			}
			// The root assignment consumes one node, as in the serial loop.
			if b.budget != nil && atomic.AddInt64(b.budget, -1) < 0 {
				outcomes[bi] = branchOutcome{err: ErrSearchLimit}
				return
			}
			b.assign[v0] = val
			b.assigned[v0] = true
			if !consistent(v0, s.facetOf, s.facetVerts, b.assign, b.assigned, s.domains, s.k) {
				return
			}
			ok, err := b.rec(1)
			if ok {
				// Lower the bar to this branch if no lower branch has won yet.
				for {
					cur := atomic.LoadInt64(&best)
					if cur < int64(bi) || atomic.CompareAndSwapInt64(&best, cur, int64(bi)) {
						break
					}
				}
				outcomes[bi] = branchOutcome{dm: b.decisionMap(), ok: true}
				return
			}
			outcomes[bi] = branchOutcome{err: err}
		}(bi, val)
	}
	wg.Wait()
	limited := false
	for _, o := range outcomes {
		if o.ok {
			return o.dm, true, nil
		}
		if o.err == ErrSearchLimit {
			limited = true
		}
	}
	if limited {
		return nil, false, ErrSearchLimit
	}
	return nil, false, nil
}
