package task

import (
	"errors"
	"fmt"
	"testing"

	"pseudosphere/internal/asyncmodel"
	"pseudosphere/internal/topology"
)

// roundAnnotated builds a real one-round async protocol complex annotated
// with the values-seen rule — the workload the parallel search targets.
func roundAnnotated(t testing.TB, n, f int) *Annotated {
	t.Helper()
	verts := make([]topology.Vertex, n+1)
	for i := range verts {
		verts[i] = topology.Vertex{P: i, Label: fmt.Sprintf("%d", i)}
	}
	res, err := asyncmodel.OneRound(mustSimplex(verts...), asyncmodel.Params{N: n, F: f})
	if err != nil {
		t.Fatal(err)
	}
	return AnnotateViews(res.Complex, res.Views)
}

// The parallel search must agree with the serial search on existence and
// return a valid certificate, for every worker count.
func TestFindDecisionParallelMatchesSerial(t *testing.T) {
	cases := []struct {
		n, f, k int
	}{
		{2, 1, 2}, // solvable: k > f
		{2, 2, 2}, // unsolvable: wait-free 2-set agreement on 3 processes
		{3, 2, 3}, // solvable
	}
	for _, tc := range cases {
		a := roundAnnotated(t, tc.n, tc.f)
		wantDM, wantOK, err := FindDecision(a, tc.k, 0)
		if err != nil {
			t.Fatalf("n=%d f=%d k=%d: serial: %v", tc.n, tc.f, tc.k, err)
		}
		for _, workers := range []int{1, 2, 4, 8} {
			dm, ok, err := FindDecisionParallel(a, tc.k, 0, workers)
			if err != nil {
				t.Fatalf("n=%d f=%d k=%d w=%d: %v", tc.n, tc.f, tc.k, workers, err)
			}
			if ok != wantOK {
				t.Fatalf("n=%d f=%d k=%d w=%d: ok=%v, serial says %v", tc.n, tc.f, tc.k, workers, ok, wantOK)
			}
			if ok {
				if err := CheckDecision(a, dm, tc.k); err != nil {
					t.Fatalf("n=%d f=%d k=%d w=%d: invalid map: %v", tc.n, tc.f, tc.k, workers, err)
				}
			}
			_ = wantDM
		}
	}
}

// The lowest-successful-branch rule makes the returned map deterministic:
// repeated parallel runs return the identical map, equal to the serial one.
func TestFindDecisionParallelDeterministic(t *testing.T) {
	a := roundAnnotated(t, 2, 1)
	serial, ok, err := FindDecision(a, 2, 0)
	if err != nil || !ok {
		t.Fatalf("serial: ok=%v err=%v", ok, err)
	}
	for trial := 0; trial < 5; trial++ {
		dm, ok, err := FindDecisionParallel(a, 2, 0, 4)
		if err != nil || !ok {
			t.Fatalf("trial %d: ok=%v err=%v", trial, ok, err)
		}
		for v, val := range serial {
			if dm[v] != val {
				t.Fatalf("trial %d: decision at %v = %q, serial %q", trial, v, dm[v], val)
			}
		}
	}
}

func TestFindDecisionParallelNodeLimit(t *testing.T) {
	a := roundAnnotated(t, 2, 2) // unsolvable: the search must exhaust
	_, ok, err := FindDecisionParallel(a, 2, 10, 4)
	if ok {
		t.Fatal("k=2 on a wait-free round should be unsolvable")
	}
	if !errors.Is(err, ErrSearchLimit) {
		t.Fatalf("expected ErrSearchLimit with a 10-node budget, got %v", err)
	}
	// Consensus path ignores workers and the limit entirely.
	if _, _, err := FindDecisionParallel(a, 1, 1, 4); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkFindDecisionParallel(b *testing.B) {
	a := roundAnnotated(b, 2, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok, err := FindDecisionParallel(a, 2, 0, 4); ok || err != nil {
			b.Fatalf("ok=%v err=%v", ok, err)
		}
	}
}
