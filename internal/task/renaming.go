package task

import (
	"fmt"
	"sort"
)

// Renaming is the second task the paper's introduction cites as motivating
// higher degrees of similarity [ABND+90]: each participating process must
// choose a name from a namespace 1..M such that names chosen in any single
// execution are pairwise distinct. On a protocol complex this means a
// decision map whose values on every simplex are pairwise distinct.
//
// FindRenaming searches for such a map exactly (backtracking with
// all-different propagation on facets). It returns (map, true, nil) when
// one exists, (nil, false, nil) when provably none exists, and
// ErrSearchLimit when the node budget is exhausted.
func FindRenaming(c *Annotated, namespace int, nodeLimit int64) (DecisionMap, bool, error) {
	if namespace < 1 {
		return nil, false, fmt.Errorf("task: namespace must be positive, got %d", namespace)
	}
	verts := c.Complex.Vertices()
	if len(verts) == 0 {
		return DecisionMap{}, true, nil
	}
	vIdx := make(map[string]int, len(verts))
	for i, v := range verts {
		vIdx[v.String()] = i
	}
	facets := c.Complex.Facets()
	facetOf := make([][]int, len(verts))
	facetVerts := make([][]int, len(facets))
	for fi, f := range facets {
		fv := make([]int, len(f))
		for j, v := range f {
			fv[j] = vIdx[v.String()]
			facetOf[vIdx[v.String()]] = append(facetOf[vIdx[v.String()]], fi)
		}
		facetVerts[fi] = fv
	}
	// Domains: all names 1..M (validity for renaming is just range
	// membership; the Annotated's Allowed sets are not used, since names
	// are not input values).
	domain := make([]int, namespace)
	for i := range domain {
		domain[i] = i + 1
	}
	assign := make([]int, len(verts))
	assigned := make([]bool, len(verts))
	order := searchOrder(facetVerts, len(verts))
	var nodes int64

	conflict := func(vi, name int) bool {
		for _, fi := range facetOf[vi] {
			for _, wj := range facetVerts[fi] {
				if wj != vi && assigned[wj] && assign[wj] == name {
					return true
				}
			}
		}
		return false
	}

	var rec func(pos int) (bool, error)
	rec = func(pos int) (bool, error) {
		if pos == len(order) {
			return true, nil
		}
		vi := order[pos]
		for _, name := range domain {
			nodes++
			if nodeLimit > 0 && nodes > nodeLimit {
				return false, ErrSearchLimit
			}
			if conflict(vi, name) {
				continue
			}
			assign[vi] = name
			assigned[vi] = true
			ok, err := rec(pos + 1)
			if ok || err != nil {
				return ok, err
			}
			assigned[vi] = false
		}
		return false, nil
	}
	ok, err := rec(0)
	if err != nil || !ok {
		return nil, false, err
	}
	dm := make(DecisionMap, len(verts))
	for i, v := range verts {
		dm[v] = fmt.Sprintf("%d", assign[i])
	}
	return dm, true, nil
}

// CheckRenaming verifies a renaming decision map: every vertex has a name
// in 1..namespace and every simplex's names are pairwise distinct.
func CheckRenaming(c *Annotated, dm DecisionMap, namespace int) error {
	for _, v := range c.Complex.Vertices() {
		name, ok := dm[v]
		if !ok {
			return fmt.Errorf("task: vertex %v has no name", v)
		}
		var n int
		if _, err := fmt.Sscanf(name, "%d", &n); err != nil || n < 1 || n > namespace {
			return fmt.Errorf("task: name %q at %v outside 1..%d", name, v, namespace)
		}
	}
	for _, f := range c.Complex.Facets() {
		seen := make(map[string]bool, len(f))
		for _, v := range f {
			if seen[dm[v]] {
				return fmt.Errorf("task: simplex %v repeats name %q", f, dm[v])
			}
			seen[dm[v]] = true
		}
	}
	return nil
}

// MinimalNamespace returns the least namespace size for which a renaming
// map exists on the complex, probing upward from the number of processes;
// it gives up (returning 0 and ErrSearchLimit) if a probe exhausts the
// node budget.
func MinimalNamespace(c *Annotated, maxNamespace int, nodeLimit int64) (int, error) {
	ids := make(map[int]bool)
	for _, v := range c.Complex.Vertices() {
		ids[v.P] = true
	}
	lower := len(ids)
	sizes := make([]int, 0, maxNamespace-lower+1)
	for m := lower; m <= maxNamespace; m++ {
		sizes = append(sizes, m)
	}
	sort.Ints(sizes)
	for _, m := range sizes {
		_, found, err := FindRenaming(c, m, nodeLimit)
		if err != nil {
			return 0, err
		}
		if found {
			return m, nil
		}
	}
	return 0, fmt.Errorf("task: no renaming map up to namespace %d", maxNamespace)
}
