package task

import (
	"testing"

	"pseudosphere/internal/topology"
)

func TestRenamingOnSingleSimplex(t *testing.T) {
	tri := mustSimplex(v(0, "a"), v(1, "b"), v(2, "c"))
	c := topology.ComplexOf(tri)
	ann := &Annotated{Complex: c, Allowed: map[topology.Vertex][]string{}}

	// Namespace 3 suffices for one isolated execution.
	dm, found, err := FindRenaming(ann, 3, 0)
	if err != nil || !found {
		t.Fatalf("found=%v err=%v", found, err)
	}
	if err := CheckRenaming(ann, dm, 3); err != nil {
		t.Fatal(err)
	}
	// Namespace 2 cannot name three processes distinctly.
	if _, found, err := FindRenaming(ann, 2, 0); err != nil || found {
		t.Fatalf("found=%v err=%v; 3 processes need 3 names in one simplex", found, err)
	}
	if m, err := MinimalNamespace(ann, 5, 0); err != nil || m != 3 {
		t.Fatalf("minimal namespace = %d, %v; want 3", m, err)
	}
}

func TestRenamingOnChainNeedsExtraNames(t *testing.T) {
	// A cycle of edges alternating the process pair can force more names
	// than processes: build the 4-cycle psi(S^1;{0,1}) where each process
	// has two possible views; a renaming with namespace 2 must give both
	// views of process 0 different... check what the search says, and
	// verify the found map at the minimal namespace.
	c := topology.ComplexOf(
		mustSimplex(v(0, "x"), v(1, "x")),
		mustSimplex(v(1, "x"), v(0, "y")),
		mustSimplex(v(0, "y"), v(1, "y")),
		mustSimplex(v(1, "y"), v(0, "x")),
	)
	ann := &Annotated{Complex: c, Allowed: map[topology.Vertex][]string{}}
	// Namespace 2 works here: name by process id... only if each edge has
	// distinct names, which holds when names depend only on the process.
	dm, found, err := FindRenaming(ann, 2, 0)
	if err != nil || !found {
		t.Fatalf("found=%v err=%v", found, err)
	}
	if err := CheckRenaming(ann, dm, 2); err != nil {
		t.Fatal(err)
	}
}

func TestCheckRenamingViolations(t *testing.T) {
	e := mustSimplex(v(0, "a"), v(1, "b"))
	c := topology.ComplexOf(e)
	ann := &Annotated{Complex: c, Allowed: map[topology.Vertex][]string{}}
	if err := CheckRenaming(ann, DecisionMap{v(0, "a"): "1", v(1, "b"): "1"}, 2); err == nil {
		t.Fatal("repeated name accepted")
	}
	if err := CheckRenaming(ann, DecisionMap{v(0, "a"): "1", v(1, "b"): "9"}, 2); err == nil {
		t.Fatal("out-of-range name accepted")
	}
	if err := CheckRenaming(ann, DecisionMap{v(0, "a"): "1"}, 2); err == nil {
		t.Fatal("missing name accepted")
	}
	if _, _, err := FindRenaming(ann, 0, 0); err == nil {
		t.Fatal("empty namespace accepted")
	}
}
