package task

import "fmt"

// RunOutcome is the observable result of executing an agreement protocol on
// the message-passing runtime: the inputs, the decisions of the processes
// that decided, and which processes crashed.
type RunOutcome struct {
	Inputs    map[int]string // process id -> input value
	Decisions map[int]string // process id -> decision (absent if none)
	Crashed   map[int]bool   // process id -> crashed during the run
}

// CheckKSetAgreement verifies the three conditions of the k-set agreement
// task (Section 4) on a concrete run: termination (every non-crashed
// process decided), validity (every decision is some process's input), and
// agreement (at most k distinct decisions collectively).
func (o *RunOutcome) CheckKSetAgreement(k int) error {
	inputSet := make(map[string]bool, len(o.Inputs))
	for _, v := range o.Inputs {
		inputSet[v] = true
	}
	distinct := make(map[string]bool)
	for p := range o.Inputs {
		d, decided := o.Decisions[p]
		if !decided {
			if !o.Crashed[p] {
				return fmt.Errorf("task: process %d neither crashed nor decided", p)
			}
			continue
		}
		if !inputSet[d] {
			return fmt.Errorf("task: process %d decided %q, which is no process's input", p, d)
		}
		distinct[d] = true
	}
	if len(distinct) > k {
		return fmt.Errorf("task: %d distinct decisions, want at most %d", len(distinct), k)
	}
	return nil
}

// CheckConsensus is CheckKSetAgreement with k = 1.
func (o *RunOutcome) CheckConsensus() error { return o.CheckKSetAgreement(1) }
