// Package task defines the decision tasks the paper proves bounds for —
// k-set agreement and its k=1 special case, consensus — together with the
// machinery for reasoning about their solvability on protocol complexes:
// annotated complexes (each vertex knows which decision values are valid
// for it), decision maps, an exact solvability search, and the
// Theorem 9 / Corollary 10 connectivity obstructions.
package task

import (
	"errors"
	"fmt"
	"sort"
	"sync/atomic"

	"pseudosphere/internal/topology"
)

// Annotated pairs a protocol complex with, for every vertex, the set of
// decision values that validity permits at that vertex. For
// full-information protocols this is exactly the set of input values
// visible in the vertex's view: a vertex lies in P(S) for precisely the
// input simplexes S consistent with its view, and the intersection of
// vals(S) over those S is the set of values seen.
type Annotated struct {
	Complex *topology.Complex
	Allowed map[topology.Vertex][]string
}

// Validate checks internal consistency: every vertex of the complex has a
// nonempty allowed set.
func (a *Annotated) Validate() error {
	for _, v := range a.Complex.Vertices() {
		vals, ok := a.Allowed[v]
		if !ok || len(vals) == 0 {
			return fmt.Errorf("task: vertex %v has no allowed decision values", v)
		}
	}
	return nil
}

// DecisionMap assigns a decision value to every vertex of a protocol
// complex; it is the paper's map delta from Section 4.
type DecisionMap map[topology.Vertex]string

// CheckDecision verifies that dm solves k-set agreement on a: every vertex
// is assigned an allowed value (validity) and the vertices of every simplex
// carry at most k distinct values (agreement). Checking facets suffices
// since faces carry subsets of a facet's values.
func CheckDecision(a *Annotated, dm DecisionMap, k int) error {
	for _, v := range a.Complex.Vertices() {
		val, ok := dm[v]
		if !ok {
			return fmt.Errorf("task: vertex %v has no decision", v)
		}
		if !contains(a.Allowed[v], val) {
			return fmt.Errorf("task: decision %q at %v violates validity (allowed %v)", val, v, a.Allowed[v])
		}
	}
	for _, s := range a.Complex.Facets() {
		if distinctDecisions(s, dm) > k {
			return fmt.Errorf("task: simplex %v carries more than %d decision values", s, k)
		}
	}
	return nil
}

func distinctDecisions(s topology.Simplex, dm DecisionMap) int {
	seen := make(map[string]bool, len(s))
	for _, v := range s {
		seen[dm[v]] = true
	}
	return len(seen)
}

// ErrSearchLimit reports that the backtracking search exceeded its node
// budget without resolving existence.
var ErrSearchLimit = errors.New("task: decision-map search exceeded its node limit")

// FindDecision searches for a k-set agreement decision map on a. It
// returns (map, true, nil) if one exists, (nil, false, nil) if provably
// none exists, and (nil, false, ErrSearchLimit) if the backtracking search
// hit nodeLimit without resolving. A nodeLimit <= 0 means unlimited.
//
// For k = 1 (consensus) an exact polynomial-time procedure is used: every
// simplex must be monochromatic, so the decision value is constant on each
// connected component of the 1-skeleton and a map exists iff every
// component's allowed sets have a common value.
func FindDecision(a *Annotated, k int, nodeLimit int64) (DecisionMap, bool, error) {
	if err := a.Validate(); err != nil {
		return nil, false, err
	}
	if a.Complex.IsEmpty() {
		return DecisionMap{}, true, nil
	}
	if k <= 0 {
		return nil, false, fmt.Errorf("task: k must be positive, got %d", k)
	}
	if k == 1 {
		dm, ok := findConsensus(a)
		return dm, ok, nil
	}
	return findBacktracking(a, k, nodeLimit)
}

// findConsensus implements the exact k=1 procedure.
func findConsensus(a *Annotated) (DecisionMap, bool) {
	verts := a.Complex.Vertices()
	idx := make(map[topology.Vertex]int, len(verts))
	for i, v := range verts {
		idx[v] = i
	}
	parent := make([]int, len(verts))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, e := range a.Complex.Simplices(1) {
		pa, pb := find(idx[e[0]]), find(idx[e[1]])
		parent[pa] = pb
	}
	// Intersect allowed sets per component.
	common := make(map[int]map[string]bool)
	for i, v := range verts {
		root := find(i)
		set, ok := common[root]
		if !ok {
			set = make(map[string]bool)
			for _, val := range a.Allowed[v] {
				set[val] = true
			}
			common[root] = set
			continue
		}
		next := make(map[string]bool)
		for _, val := range a.Allowed[v] {
			if set[val] {
				next[val] = true
			}
		}
		common[root] = next
	}
	dm := make(DecisionMap, len(verts))
	for i, v := range verts {
		set := common[find(i)]
		if len(set) == 0 {
			return nil, false
		}
		vals := make([]string, 0, len(set))
		for val := range set {
			vals = append(vals, val)
		}
		sort.Strings(vals)
		dm[v] = vals[0]
	}
	return dm, true
}

// search is the immutable setup of the backtracking search: the vertex and
// facet index structures, per-vertex domains, and the variable order. It is
// built once and shared read-only by every search branch (including
// concurrent branches of the parallel search).
type search struct {
	verts      []topology.Vertex
	facetOf    [][]int // vertex -> facet indices
	facetVerts [][]int // facet -> vertex indices
	domains    [][]string
	order      []int
	k          int
}

func newSearch(a *Annotated, k int) *search {
	verts := a.Complex.Vertices()
	vIdx := make(map[topology.Vertex]int, len(verts))
	for i, v := range verts {
		vIdx[v] = i
	}
	facets := a.Complex.Facets()
	facetOf := make([][]int, len(verts))
	facetVerts := make([][]int, len(facets))
	for fi, f := range facets {
		fv := make([]int, len(f))
		for j, v := range f {
			fv[j] = vIdx[v]
			facetOf[vIdx[v]] = append(facetOf[vIdx[v]], fi)
		}
		facetVerts[fi] = fv
	}
	domains := make([][]string, len(verts))
	for i, v := range verts {
		domains[i] = append([]string(nil), a.Allowed[v]...)
		sort.Strings(domains[i])
	}
	return &search{
		verts:      verts,
		facetOf:    facetOf,
		facetVerts: facetVerts,
		domains:    domains,
		order:      searchOrder(facetVerts, len(verts)),
		k:          k,
	}
}

// errAborted signals a branch cut off because a lower-indexed branch
// already succeeded; its outcome is irrelevant and never surfaces.
var errAborted = errors.New("task: search branch aborted")

// branchRun is one search branch's mutable state: its own assignment
// vectors, a share of the (possibly global) node budget, and an optional
// abort probe checked at every node.
type branchRun struct {
	s        *search
	assign   []string
	assigned []bool
	budget   *int64 // remaining shared node budget; nil = unlimited
	abort    func() bool
}

func (b *branchRun) rec(pos int) (bool, error) {
	if pos == len(b.s.order) {
		return true, nil
	}
	vi := b.s.order[pos]
	for _, val := range b.s.domains[vi] {
		if b.budget != nil && atomic.AddInt64(b.budget, -1) < 0 {
			return false, ErrSearchLimit
		}
		if b.abort != nil && b.abort() {
			return false, errAborted
		}
		b.assign[vi] = val
		b.assigned[vi] = true
		if consistent(vi, b.s.facetOf, b.s.facetVerts, b.assign, b.assigned, b.s.domains, b.s.k) {
			ok, err := b.rec(pos + 1)
			if ok || err != nil {
				return ok, err
			}
		}
		b.assigned[vi] = false
	}
	return false, nil
}

// decisionMap materializes the branch's assignment.
func (b *branchRun) decisionMap() DecisionMap {
	dm := make(DecisionMap, len(b.s.verts))
	for i, v := range b.s.verts {
		dm[v] = b.assign[i]
	}
	return dm
}

// findBacktracking is an exact backtracking search with forward checking:
// when a facet reaches k distinct assigned values, the domains of its
// unassigned vertices shrink to those values.
func findBacktracking(a *Annotated, k int, nodeLimit int64) (DecisionMap, bool, error) {
	s := newSearch(a, k)
	b := &branchRun{
		s:        s,
		assign:   make([]string, len(s.verts)),
		assigned: make([]bool, len(s.verts)),
	}
	if nodeLimit > 0 {
		remaining := nodeLimit
		b.budget = &remaining
	}
	ok, err := b.rec(0)
	if err != nil {
		return nil, false, err
	}
	if !ok {
		return nil, false, nil
	}
	return b.decisionMap(), true, nil
}

// consistent checks that every facet touching vertex vi can still be
// completed: assigned values do not exceed k distinct, and if exactly k are
// assigned, every unassigned vertex in the facet has one of them in its
// domain.
func consistent(vi int, facetOf [][]int, facetVerts [][]int, assign []string, assigned []bool, domains [][]string, k int) bool {
	for _, fi := range facetOf[vi] {
		seen := make(map[string]bool, k+1)
		for _, wj := range facetVerts[fi] {
			if assigned[wj] {
				seen[assign[wj]] = true
			}
		}
		if len(seen) > k {
			return false
		}
		if len(seen) == k {
			for _, wj := range facetVerts[fi] {
				if assigned[wj] {
					continue
				}
				ok := false
				for _, val := range domains[wj] {
					if seen[val] {
						ok = true
						break
					}
				}
				if !ok {
					return false
				}
			}
		}
	}
	return true
}

// searchOrder orders vertices facet-by-facet so that agreement constraints
// bind as early as possible.
func searchOrder(facetVerts [][]int, n int) []int {
	order := make([]int, 0, n)
	seen := make([]bool, n)
	for _, fv := range facetVerts {
		for _, vi := range fv {
			if !seen[vi] {
				seen[vi] = true
				order = append(order, vi)
			}
		}
	}
	for vi := 0; vi < n; vi++ {
		if !seen[vi] {
			order = append(order, vi)
		}
	}
	return order
}

func contains(xs []string, x string) bool {
	for _, y := range xs {
		if y == x {
			return true
		}
	}
	return false
}
