package task

import (
	"errors"
	"testing"

	"pseudosphere/internal/topology"
)

func v(p int, label string) topology.Vertex { return topology.Vertex{P: p, Label: label} }

func annotated(c *topology.Complex, allowed map[topology.Vertex][]string) *Annotated {
	return &Annotated{Complex: c, Allowed: allowed}
}

func TestFindConsensusOnMonochromeComponent(t *testing.T) {
	// Path a--b--c where every vertex allows {0,1}: consensus exists.
	c := topology.ComplexOf(
		mustSimplex(v(0, "a"), v(1, "b")),
		mustSimplex(v(1, "b"), v(0, "c")),
	)
	allowed := map[topology.Vertex][]string{
		v(0, "a"): {"0", "1"},
		v(1, "b"): {"0", "1"},
		v(0, "c"): {"0", "1"},
	}
	dm, found, err := FindDecision(annotated(c, allowed), 1, 0)
	if err != nil || !found {
		t.Fatalf("found=%v err=%v", found, err)
	}
	if err := CheckDecision(annotated(c, allowed), dm, 1); err != nil {
		t.Fatal(err)
	}
}

func TestFindConsensusImpossibleOnForcedPath(t *testing.T) {
	// Path where one end allows only 0 and the other only 1: the
	// component has no common value, so consensus is impossible.
	c := topology.ComplexOf(
		mustSimplex(v(0, "a"), v(1, "b")),
		mustSimplex(v(1, "b"), v(0, "c")),
	)
	allowed := map[topology.Vertex][]string{
		v(0, "a"): {"0"},
		v(1, "b"): {"0", "1"},
		v(0, "c"): {"1"},
	}
	_, found, err := FindDecision(annotated(c, allowed), 1, 0)
	if err != nil || found {
		t.Fatalf("found=%v err=%v; want impossible", found, err)
	}
}

func TestFindConsensusDisconnectedComponents(t *testing.T) {
	// Two components with different forced values: fine for consensus
	// (each simplex is monochromatic).
	c := topology.ComplexOf(
		mustSimplex(v(0, "a"), v(1, "b")),
		mustSimplex(v(0, "x"), v(1, "y")),
	)
	allowed := map[topology.Vertex][]string{
		v(0, "a"): {"0"}, v(1, "b"): {"0"},
		v(0, "x"): {"1"}, v(1, "y"): {"1"},
	}
	dm, found, err := FindDecision(annotated(c, allowed), 1, 0)
	if err != nil || !found {
		t.Fatalf("found=%v err=%v", found, err)
	}
	if dm[v(0, "a")] != "0" || dm[v(0, "x")] != "1" {
		t.Fatalf("decisions: %v", dm)
	}
}

func TestFindDecisionK2Triangle(t *testing.T) {
	// A triangle with three forced distinct values cannot solve 2-set
	// agreement, but relaxing one vertex makes it solvable.
	tri := mustSimplex(v(0, "a"), v(1, "b"), v(2, "c"))
	c := topology.ComplexOf(tri)
	forced := map[topology.Vertex][]string{
		v(0, "a"): {"0"}, v(1, "b"): {"1"}, v(2, "c"): {"2"},
	}
	_, found, err := FindDecision(annotated(c, forced), 2, 0)
	if err != nil || found {
		t.Fatalf("found=%v err=%v; want impossible", found, err)
	}
	relaxed := map[topology.Vertex][]string{
		v(0, "a"): {"0"}, v(1, "b"): {"1"}, v(2, "c"): {"2", "0"},
	}
	dm, found, err := FindDecision(annotated(c, relaxed), 2, 0)
	if err != nil || !found {
		t.Fatalf("found=%v err=%v; want solvable", found, err)
	}
	if err := CheckDecision(annotated(c, relaxed), dm, 2); err != nil {
		t.Fatal(err)
	}
}

func TestFindDecisionSearchLimit(t *testing.T) {
	// A larger instance with an immediate dead end everywhere but a tiny
	// node budget: the search must report ErrSearchLimit, not a wrong
	// answer.
	var simplexes []topology.Simplex
	allowed := make(map[topology.Vertex][]string)
	for i := 0; i < 6; i++ {
		a := v(0, string(rune('a'+i)))
		b := v(1, string(rune('a'+i)))
		simplexes = append(simplexes, mustSimplex(a, b))
		allowed[a] = []string{"0", "1", "2"}
		allowed[b] = []string{"0", "1", "2"}
	}
	c := topology.ComplexOf(simplexes...)
	_, _, err := FindDecision(annotated(c, allowed), 2, 1)
	if !errors.Is(err, ErrSearchLimit) {
		t.Fatalf("err = %v, want ErrSearchLimit", err)
	}
}

func TestCheckDecisionViolations(t *testing.T) {
	tri := mustSimplex(v(0, "a"), v(1, "b"), v(2, "c"))
	c := topology.ComplexOf(tri)
	allowed := map[topology.Vertex][]string{
		v(0, "a"): {"0"}, v(1, "b"): {"1"}, v(2, "c"): {"2"},
	}
	ann := annotated(c, allowed)
	full := DecisionMap{v(0, "a"): "0", v(1, "b"): "1", v(2, "c"): "2"}
	if err := CheckDecision(ann, full, 2); err == nil {
		t.Fatal("3 distinct values must violate 2-set agreement")
	}
	if err := CheckDecision(ann, full, 3); err != nil {
		t.Fatalf("3-set agreement should pass: %v", err)
	}
	invalid := DecisionMap{v(0, "a"): "9", v(1, "b"): "1", v(2, "c"): "2"}
	if err := CheckDecision(ann, invalid, 3); err == nil {
		t.Fatal("validity violation not caught")
	}
	missing := DecisionMap{v(0, "a"): "0"}
	if err := CheckDecision(ann, missing, 3); err == nil {
		t.Fatal("missing decision not caught")
	}
}

func TestAnnotatedValidate(t *testing.T) {
	c := topology.ComplexOf(mustSimplex(v(0, "a")))
	if err := annotated(c, map[topology.Vertex][]string{}).Validate(); err == nil {
		t.Fatal("missing allowed set not caught")
	}
}

func TestRunOutcomeChecks(t *testing.T) {
	o := &RunOutcome{
		Inputs:    map[int]string{0: "0", 1: "1", 2: "1"},
		Decisions: map[int]string{0: "0", 1: "1", 2: "1"},
		Crashed:   map[int]bool{},
	}
	if err := o.CheckKSetAgreement(2); err != nil {
		t.Fatal(err)
	}
	if err := o.CheckConsensus(); err == nil {
		t.Fatal("two distinct decisions must violate consensus")
	}
	o.Decisions[2] = "7"
	if err := o.CheckKSetAgreement(2); err == nil {
		t.Fatal("non-input decision must violate validity")
	}
	o.Decisions = map[int]string{0: "0"}
	if err := o.CheckKSetAgreement(2); err == nil {
		t.Fatal("undecided live processes must violate termination")
	}
	o.Crashed = map[int]bool{1: true, 2: true}
	if err := o.CheckKSetAgreement(2); err != nil {
		t.Fatalf("crashed processes are exempt from termination: %v", err)
	}
}

func TestSearchSpaceLog2(t *testing.T) {
	c := topology.ComplexOf(topology.Simplex{v(0, "a"), v(1, "b"), v(2, "c")})
	a := annotated(c, map[topology.Vertex][]string{
		v(0, "a"): {"0", "1"},      // 1 bit
		v(1, "b"): {"0", "1", "2"}, // log2 3 bits
		v(2, "c"): {"0"},           // forced: 0 bits
	})
	got := SearchSpaceLog2(a)
	want := 1 + 1.584962500721156
	if diff := got - want; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("SearchSpaceLog2 = %v, want %v", got, want)
	}
	empty := annotated(topology.NewComplex(), nil)
	if got := SearchSpaceLog2(empty); got != 0 {
		t.Fatalf("SearchSpaceLog2(empty) = %v, want 0", got)
	}
}
