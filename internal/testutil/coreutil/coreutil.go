// Package coreutil holds the panic-on-error pseudosphere constructors
// shared by test suites above core in the import graph. It is separate
// from testutil so that packages below core (homology, topology) can use
// testutil without an import cycle; core's own internal tests keep local
// copies for the same reason.
package coreutil

import (
	"pseudosphere/internal/core"
	"pseudosphere/internal/topology"
)

// MustUniform is core.Uniform for statically-correct test inputs; it
// panics on error.
func MustUniform(base topology.Simplex, set []string) *topology.Complex {
	c, err := core.Uniform(base, set)
	if err != nil {
		panic(err)
	}
	return c
}

// MustPseudosphere is core.Pseudosphere for statically-correct test
// inputs; it panics on error.
func MustPseudosphere(base topology.Simplex, sets [][]string) *topology.Complex {
	c, err := core.Pseudosphere(base, sets)
	if err != nil {
		panic(err)
	}
	return c
}
