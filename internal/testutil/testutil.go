// Package testutil holds the panic-on-error constructors shared by the
// package test suites, hoisted from a dozen per-package musthelpers
// copies. It depends only on topology so that every internal test package
// except topology's own can bind to it (topology's internal tests would
// form an import cycle and keep a local copy; helpers needing core live in
// the coreutil subpackage for the same reason).
package testutil

import (
	"pseudosphere/internal/topology"
)

// MustSimplex is topology.NewSimplex for statically-correct test inputs;
// it panics on error so call sites stay one-line literals.
func MustSimplex(vs ...topology.Vertex) topology.Simplex {
	s, err := topology.NewSimplex(vs...)
	if err != nil {
		panic(err)
	}
	return s
}

// Labeled builds the (n+1)-process input simplex with labels prefix+i.
// The vertices are generated in ascending process order, which is the
// Simplex invariant, so no validating constructor is needed.
func Labeled(n int, prefix string) topology.Simplex {
	vs := make(topology.Simplex, n+1)
	for i := range vs {
		vs[i] = topology.Vertex{P: i, Label: prefix + string(rune('0'+i))}
	}
	return vs
}
