package topology

import "testing"

func benchComplex(labels int) *Complex {
	c := NewComplex()
	for a := 0; a < labels; a++ {
		for b := 0; b < labels; b++ {
			for d := 0; d < labels; d++ {
				c.Add(mustSimplex(
					Vertex{P: 0, Label: string(rune('a' + a))},
					Vertex{P: 1, Label: string(rune('a' + b))},
					Vertex{P: 2, Label: string(rune('a' + d))},
				))
			}
		}
	}
	return c
}

func BenchmarkComplexAdd(b *testing.B) {
	for i := 0; i < b.N; i++ {
		benchComplex(4)
	}
}

func BenchmarkFacets(b *testing.B) {
	c := benchComplex(4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := len(c.Facets()); got != 64 {
			b.Fatalf("facets = %d", got)
		}
	}
}

func BenchmarkIntersection(b *testing.B) {
	c1, c2 := benchComplex(4), benchComplex(3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c1.Intersection(c2)
	}
}

func BenchmarkBarycentricSubdivision(b *testing.B) {
	c := ComplexOf(mustSimplex(v(0, "a"), v(1, "b"), v(2, "c"), v(3, "d")))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BarycentricSubdivision(c)
	}
}

func BenchmarkVerifyIsomorphismIdentity(b *testing.B) {
	c := benchComplex(3)
	m := make(VertexMap)
	for _, vert := range c.Vertices() {
		m[vert] = vert
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := VerifyIsomorphism(c, c, m); err != nil {
			b.Fatal(err)
		}
	}
}
