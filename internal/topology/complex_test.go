package topology

import (
	"testing"
	"testing/quick"
)

func triangle() Simplex {
	return mustSimplex(v(0, "a"), v(1, "b"), v(2, "c"))
}

func TestComplexClosure(t *testing.T) {
	c := ComplexOf(triangle())
	if got := c.Size(); got != 7 {
		t.Fatalf("size = %d, want 7 (3 vertices + 3 edges + 1 triangle)", got)
	}
	fv := c.FVector()
	if fv[0] != 3 || fv[1] != 3 || fv[2] != 1 {
		t.Fatalf("f-vector = %v", fv)
	}
	if c.EulerCharacteristic() != 1 {
		t.Fatalf("chi = %d, want 1", c.EulerCharacteristic())
	}
	if !c.Has(triangle().Face(0)) {
		t.Fatal("closure is missing a face")
	}
}

func TestComplexFacets(t *testing.T) {
	s := triangle()
	extra := mustSimplex(v(2, "c"), v(3, "d"))
	c := ComplexOf(s, extra)
	facets := c.Facets()
	if len(facets) != 2 {
		t.Fatalf("facets = %v", facets)
	}
}

func TestComplexUnionIntersection(t *testing.T) {
	a := ComplexOf(mustSimplex(v(0, "a"), v(1, "b")))
	b := ComplexOf(mustSimplex(v(1, "b"), v(2, "c")))
	u := a.Union(b)
	if u.Size() != 5 {
		t.Fatalf("union size = %d, want 5", u.Size())
	}
	i := a.Intersection(b)
	if i.Size() != 1 || !i.HasVertex(v(1, "b")) {
		t.Fatalf("intersection = %v", i)
	}
	if !a.IsSubcomplexOf(u) || !i.IsSubcomplexOf(a) {
		t.Fatal("subcomplex relations violated")
	}
}

func TestComplexSkeletonAndRestriction(t *testing.T) {
	c := ComplexOf(triangle())
	sk := c.Skeleton(1)
	if sk.Dim() != 1 || sk.Size() != 6 {
		t.Fatalf("skeleton = %v", sk)
	}
	r := c.Restriction(func(vert Vertex) bool { return vert.P != 2 })
	if r.Size() != 3 { // two vertices and one edge
		t.Fatalf("restriction size = %d, want 3", r.Size())
	}
}

func TestStarAndLink(t *testing.T) {
	c := ComplexOf(triangle())
	star := c.Star(v(0, "a"))
	if star.Dim() != 2 {
		t.Fatalf("star dim = %d", star.Dim())
	}
	link := c.Link(v(0, "a"))
	// Link of a vertex of a solid triangle is the opposite edge.
	if link.Dim() != 1 || link.Size() != 3 {
		t.Fatalf("link = %v", link)
	}
}

func TestComplexJoin(t *testing.T) {
	a := ComplexOf(mustSimplex(v(0, "a")), mustSimplex(v(0, "b")))
	b := ComplexOf(mustSimplex(v(1, "x")), mustSimplex(v(1, "y")))
	j, err := a.Join(b)
	if err != nil {
		t.Fatalf("join: %v", err)
	}
	// Join of two 2-point spaces is a 4-cycle: 4 vertices + 4 edges.
	if j.Size() != 8 || j.Dim() != 1 {
		t.Fatalf("join = %v", j)
	}
	if _, err := a.Join(a); err == nil {
		t.Fatal("expected join error for shared ids")
	}
}

func TestVerifyIsomorphismIdentity(t *testing.T) {
	c := ComplexOf(triangle())
	m := make(VertexMap)
	for _, vert := range c.Vertices() {
		m[vert] = vert
	}
	if err := VerifyIsomorphism(c, c, m); err != nil {
		t.Fatalf("identity is an isomorphism: %v", err)
	}
}

func TestVerifyIsomorphismRelabel(t *testing.T) {
	a := ComplexOf(mustSimplex(v(0, "x"), v(1, "y")))
	b := ComplexOf(mustSimplex(v(0, "u"), v(1, "w")))
	m := VertexMap{v(0, "x"): v(0, "u"), v(1, "y"): v(1, "w")}
	if err := VerifyIsomorphism(a, b, m); err != nil {
		t.Fatalf("relabeling is an isomorphism: %v", err)
	}
	bad := VertexMap{v(0, "x"): v(0, "u"), v(1, "y"): v(0, "u")}
	if err := VerifyIsomorphism(a, b, bad); err == nil {
		t.Fatal("non-injective map accepted")
	}
}

func TestChromaticIsomorphic(t *testing.T) {
	// Two 4-cycles with different labels are chromatically isomorphic.
	a := ComplexOf(
		mustSimplex(v(0, "0"), v(1, "0")),
		mustSimplex(v(1, "0"), v(0, "1")),
		mustSimplex(v(0, "1"), v(1, "1")),
		mustSimplex(v(1, "1"), v(0, "0")),
	)
	b := ComplexOf(
		mustSimplex(v(0, "p"), v(1, "q")),
		mustSimplex(v(1, "q"), v(0, "r")),
		mustSimplex(v(0, "r"), v(1, "s")),
		mustSimplex(v(1, "s"), v(0, "p")),
	)
	if !ChromaticIsomorphic(a, b) {
		t.Fatal("isomorphic complexes not recognized")
	}
	// A path of three edges is not isomorphic to the 4-cycle.
	c := ComplexOf(
		mustSimplex(v(0, "0"), v(1, "0")),
		mustSimplex(v(1, "0"), v(0, "1")),
		mustSimplex(v(0, "1"), v(1, "1")),
	)
	if ChromaticIsomorphic(a, c) {
		t.Fatal("non-isomorphic complexes reported isomorphic")
	}
}

func TestBarycentricSubdivisionTriangle(t *testing.T) {
	c := ComplexOf(triangle())
	sd, carrier := BarycentricSubdivision(c)
	fv := sd.FVector()
	// Subdivided solid triangle: 7 vertices, 12 edges, 6 triangles.
	if fv[0] != 7 || fv[1] != 12 || fv[2] != 6 {
		t.Fatalf("subdivision f-vector = %v", fv)
	}
	if sd.EulerCharacteristic() != 1 {
		t.Fatalf("chi = %d, want 1", sd.EulerCharacteristic())
	}
	for _, vert := range sd.Vertices() {
		car, ok := carrier[vert]
		if !ok {
			t.Fatalf("vertex %v has no carrier", vert)
		}
		if car.Dim() != vert.P {
			t.Fatalf("carrier dim %d != color %d", car.Dim(), vert.P)
		}
	}
}

// TestUnionCommutesQuick checks on random edge sets that union is
// commutative and intersection is contained in both operands.
func TestUnionCommutesQuick(t *testing.T) {
	build := func(edges [4][2]uint8) *Complex {
		c := NewComplex()
		for _, e := range edges {
			a := Vertex{P: 0, Label: string(rune('a' + e[0]%3))}
			b := Vertex{P: 1, Label: string(rune('a' + e[1]%3))}
			c.Add(mustSimplex(a, b))
		}
		return c
	}
	prop := func(e1, e2 [4][2]uint8) bool {
		a, b := build(e1), build(e2)
		u1, u2 := a.Union(b), b.Union(a)
		if !u1.Equal(u2) {
			return false
		}
		i := a.Intersection(b)
		return i.IsSubcomplexOf(a) && i.IsSubcomplexOf(b) && i.IsSubcomplexOf(u1)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
