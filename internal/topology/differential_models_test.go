package topology_test

import (
	"fmt"
	"testing"

	"pseudosphere/internal/asyncmodel"
	"pseudosphere/internal/core"
	"pseudosphere/internal/homology"
	"pseudosphere/internal/semisync"
	"pseudosphere/internal/syncmodel"
	"pseudosphere/internal/topology"
)

// These tests rebuild real protocol complexes simplex by simplex through
// the retained string-keyed reference builder and require the interned
// representation to agree on the canonical hash, the f-vector, and the
// Betti numbers computed by the homology engine.

func diffInput(n int) topology.Simplex {
	verts := make([]topology.Vertex, n+1)
	for i := range verts {
		verts[i] = topology.Vertex{P: i, Label: fmt.Sprintf("v%d", i)}
	}
	return mustSimplex(verts...)
}

func referenceOf(c *topology.Complex) *topology.ReferenceComplex {
	ref := topology.NewReferenceComplex()
	for _, s := range c.Facets() {
		ref.Add(s)
	}
	return ref
}

func requireAgreement(t *testing.T, ctx string, c *topology.Complex) {
	t.Helper()
	ref := referenceOf(c)
	if c.CanonicalHash() != ref.CanonicalHash() {
		t.Fatalf("%s: canonical hash differs between representations", ctx)
	}
	if c.Size() != ref.Size() {
		t.Fatalf("%s: size %d != reference %d", ctx, c.Size(), ref.Size())
	}
	eng := homology.NewEngine(0, nil)
	got := eng.BettiZ2(c)
	want := eng.BettiZ2(ref.ToComplex())
	if len(got) != len(want) {
		t.Fatalf("%s: Betti %v != reference %v", ctx, got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: Betti %v != reference %v", ctx, got, want)
		}
	}
}

func TestDifferentialRoundComplexes(t *testing.T) {
	async, err := asyncmodel.OneRound(diffInput(2), asyncmodel.Params{N: 2, F: 1})
	if err != nil {
		t.Fatal(err)
	}
	requireAgreement(t, "A^1 n=2 f=1", async.Complex)

	sync1, err := syncmodel.OneRound(diffInput(2), syncmodel.Params{PerRound: 1, Total: 2})
	if err != nil {
		t.Fatal(err)
	}
	requireAgreement(t, "S^1 n=2 k=1", sync1.Complex)

	semi, err := semisync.OneRound(diffInput(2), semisync.Params{C1: 1, C2: 2, D: 2, PerRound: 1, Total: 2})
	if err != nil {
		t.Fatal(err)
	}
	requireAgreement(t, "M^1 n=2 k=1", semi.Complex)
}

func TestDifferentialPseudospheres(t *testing.T) {
	for _, n := range []int{1, 2, 3} {
		sets := make([][]string, n+1)
		for i := range sets {
			sets[i] = []string{"0", "1"}
		}
		ps, err := core.Pseudosphere(diffInput(n), sets)
		if err != nil {
			t.Fatal(err)
		}
		requireAgreement(t, fmt.Sprintf("psi(S^%d; {0,1})", n), ps)
	}
}
