package topology

import (
	"fmt"
	"math/rand"
	"testing"
)

// The interned Complex must agree with the retained string-keyed
// ReferenceComplex on every observable: canonical hash, f-vector, size,
// dimension, and membership. These tests drive both builders with the same
// simplex streams and compare.

func randomSimplex(rng *rand.Rand, maxP int, labels []string) Simplex {
	n := 1 + rng.Intn(maxP)
	used := make(map[int]bool)
	verts := make([]Vertex, 0, n)
	for len(verts) < n {
		p := rng.Intn(maxP)
		if used[p] {
			continue
		}
		used[p] = true
		verts = append(verts, Vertex{P: p, Label: labels[rng.Intn(len(labels))]})
	}
	return mustSimplex(verts...)
}

func compareRepresentations(t *testing.T, ctx string, c *Complex, ref *ReferenceComplex) {
	t.Helper()
	if got, want := c.CanonicalHash(), ref.CanonicalHash(); got != want {
		t.Fatalf("%s: CanonicalHash %s != reference %s", ctx, got, want)
	}
	if got, want := c.Size(), ref.Size(); got != want {
		t.Fatalf("%s: Size %d != reference %d", ctx, got, want)
	}
	if got, want := c.Dim(), ref.Dim(); got != want {
		t.Fatalf("%s: Dim %d != reference %d", ctx, got, want)
	}
	gotFV, wantFV := c.FVector(), ref.FVector()
	if len(gotFV) != len(wantFV) {
		t.Fatalf("%s: f-vector %v != reference %v", ctx, gotFV, wantFV)
	}
	for d := range gotFV {
		if gotFV[d] != wantFV[d] {
			t.Fatalf("%s: f-vector %v != reference %v", ctx, gotFV, wantFV)
		}
	}
	for _, s := range ref.AllSimplices() {
		if !c.Has(s) {
			t.Fatalf("%s: interned complex missing %v", ctx, s)
		}
	}
}

func TestDifferentialSeededRandom(t *testing.T) {
	labels := []string{"a", "b", "c", "x", "y"}
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		c := NewComplex()
		ref := NewReferenceComplex()
		for i := 0; i < 60; i++ {
			s := randomSimplex(rng, 6, labels)
			c.Add(s)
			ref.Add(s)
		}
		compareRepresentations(t, fmt.Sprintf("seed %d", seed), c, ref)
		// Membership probes for absent simplexes must agree too.
		for i := 0; i < 40; i++ {
			s := randomSimplex(rng, 6, labels)
			if c.Has(s) != ref.Has(s) {
				t.Fatalf("seed %d: Has(%v) = %v, reference %v", seed, s, c.Has(s), ref.Has(s))
			}
		}
	}
}

func TestDifferentialUnionIntersection(t *testing.T) {
	labels := []string{"0", "1"}
	rng := rand.New(rand.NewSource(42))
	a, b := NewComplex(), NewComplex()
	refA, refB := NewReferenceComplex(), NewReferenceComplex()
	for i := 0; i < 30; i++ {
		s := randomSimplex(rng, 5, labels)
		if i%2 == 0 {
			a.Add(s)
			refA.Add(s)
		} else {
			b.Add(s)
			refB.Add(s)
		}
	}
	u := a.Union(b)
	refU := NewReferenceComplex()
	for _, s := range refA.AllSimplices() {
		refU.Add(s)
	}
	for _, s := range refB.AllSimplices() {
		refU.Add(s)
	}
	compareRepresentations(t, "union", u, refU)

	inter := u.Intersection(a)
	if inter.CanonicalHash() != a.CanonicalHash() {
		t.Fatal("(A union B) intersect A != A")
	}
}

func TestReferenceToComplexRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ref := NewReferenceComplex()
	for i := 0; i < 25; i++ {
		ref.Add(randomSimplex(rng, 5, []string{"p", "q", "r"}))
	}
	c := ref.ToComplex()
	compareRepresentations(t, "round-trip", c, ref)
}

// FuzzComplexAdd drives the intern/hash path with arbitrary vertex streams
// and cross-checks every observable against the reference builder. The
// encoding of the fuzz input: each byte pair is one vertex (process id,
// label selector); a zero process byte terminates the current simplex.
func FuzzComplexAdd(f *testing.F) {
	f.Add([]byte{1, 0, 2, 1, 3, 2, 0, 0, 2, 1, 4, 3})
	f.Add([]byte{5, 5, 5, 5})
	f.Add([]byte{1, 1, 0, 0, 1, 2, 0, 0, 1, 3})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		labels := []string{"a", "b", "c", "d"}
		c := NewComplex()
		ref := NewReferenceComplex()
		var verts []Vertex
		flush := func() {
			if len(verts) == 0 {
				return
			}
			s, err := NewSimplex(verts...)
			verts = verts[:0]
			if err != nil {
				return // non-chromatic draw; both builders reject via NewSimplex
			}
			c.Add(s)
			ref.Add(s)
		}
		for i := 0; i+1 < len(data); i += 2 {
			p := int(data[i])
			if p == 0 {
				flush()
				continue
			}
			verts = append(verts, Vertex{P: p % 29, Label: labels[int(data[i+1])%len(labels)]})
		}
		flush()
		if c.CanonicalHash() != ref.CanonicalHash() {
			t.Fatalf("hash mismatch: interned %s reference %s", c.CanonicalHash(), ref.CanonicalHash())
		}
		if c.Size() != ref.Size() || c.Dim() != ref.Dim() {
			t.Fatalf("size/dim mismatch: (%d,%d) vs (%d,%d)", c.Size(), c.Dim(), ref.Size(), ref.Dim())
		}
		for _, s := range ref.AllSimplices() {
			if !c.Has(s) {
				t.Fatalf("missing %v", s)
			}
		}
	})
}
