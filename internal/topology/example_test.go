package topology_test

import (
	"fmt"

	"pseudosphere/internal/topology"
)

// ExampleComplexOf shows face closure: adding a triangle adds its edges
// and vertices.
func ExampleComplexOf() {
	tri := mustSimplex(
		topology.Vertex{P: 0, Label: "a"},
		topology.Vertex{P: 1, Label: "b"},
		topology.Vertex{P: 2, Label: "c"},
	)
	c := topology.ComplexOf(tri)
	fmt.Println(c.FVector())
	fmt.Println(c.EulerCharacteristic())
	// Output:
	// [3 3 1]
	// 1
}

// ExampleSimplex_Intersect shows the shared face of two global states —
// the paper's notion of similarity.
func ExampleSimplex_Intersect() {
	s := mustSimplex(
		topology.Vertex{P: 0, Label: "x"},
		topology.Vertex{P: 1, Label: "y"},
	)
	t := mustSimplex(
		topology.Vertex{P: 0, Label: "x"},
		topology.Vertex{P: 1, Label: "z"},
	)
	fmt.Println(s.Intersect(t))
	// Output: (P0:x)
}

// ExampleBarycentricSubdivision subdivides a triangle.
func ExampleBarycentricSubdivision() {
	tri := mustSimplex(
		topology.Vertex{P: 0, Label: "a"},
		topology.Vertex{P: 1, Label: "b"},
		topology.Vertex{P: 2, Label: "c"},
	)
	sd, _ := topology.BarycentricSubdivision(topology.ComplexOf(tri))
	fmt.Println(sd.FVector())
	// Output: [7 12 6]
}
