package topology

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// ToDOT renders the 1-skeleton of the complex as a Graphviz graph. Vertices
// are grouped by process id (one fillcolor per process); triangles and
// higher simplexes are visible as cliques.
func (c *Complex) ToDOT(name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "graph %q {\n", name)
	b.WriteString("  node [style=filled];\n")
	palette := []string{
		"lightblue", "lightsalmon", "palegreen", "plum", "khaki",
		"lightcyan", "mistyrose", "honeydew",
	}
	for _, v := range c.Vertices() {
		color := palette[v.P%len(palette)]
		fmt.Fprintf(&b, "  %q [label=%q, fillcolor=%q];\n",
			v.String(), fmt.Sprintf("P%d\\n%s", v.P, v.Label), color)
	}
	for _, e := range c.Simplices(1) {
		fmt.Fprintf(&b, "  %q -- %q;\n", e[0].String(), e[1].String())
	}
	b.WriteString("}\n")
	return b.String()
}

// exportedComplex is the JSON shape of a complex dump.
type exportedComplex struct {
	Dim     int            `json:"dim"`
	FVector []int          `json:"fVector"`
	Facets  [][]jsonVertex `json:"facets"`
}

type jsonVertex struct {
	P     int    `json:"p"`
	Label string `json:"label"`
}

// ToJSON serializes the complex's facets (the rest is recoverable by face
// closure) together with summary statistics.
func (c *Complex) ToJSON() ([]byte, error) {
	out := exportedComplex{
		Dim:     c.Dim(),
		FVector: c.FVector(),
	}
	for _, f := range c.Facets() {
		row := make([]jsonVertex, len(f))
		for i, v := range f {
			row[i] = jsonVertex{P: v.P, Label: v.Label}
		}
		out.Facets = append(out.Facets, row)
	}
	return json.MarshalIndent(out, "", "  ")
}

// FromJSON rebuilds a complex from a ToJSON dump.
func FromJSON(data []byte) (*Complex, error) {
	var in exportedComplex
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, fmt.Errorf("topology: decode complex: %w", err)
	}
	c := NewComplex()
	for _, row := range in.Facets {
		vs := make([]Vertex, len(row))
		for i, jv := range row {
			vs[i] = Vertex{P: jv.P, Label: jv.Label}
		}
		s, err := NewSimplex(vs...)
		if err != nil {
			return nil, fmt.Errorf("topology: decode facet: %w", err)
		}
		c.Add(s)
	}
	return c, nil
}

// DescribeSummary returns a one-line statistics summary useful in CLIs.
func (c *Complex) DescribeSummary() string {
	ids := c.IDs()
	idStrs := make([]string, len(ids))
	for i, p := range ids {
		idStrs[i] = fmt.Sprintf("%d", p)
	}
	sort.Strings(idStrs)
	return fmt.Sprintf("dim=%d simplexes=%d facets=%d processes={%s} chi=%d",
		c.Dim(), c.Size(), len(c.Facets()), strings.Join(idStrs, ","), c.EulerCharacteristic())
}
