package topology

import (
	"strings"
	"testing"
)

func TestToDOT(t *testing.T) {
	c := ComplexOf(triangle())
	dot := c.ToDOT("tri")
	if !strings.HasPrefix(dot, "graph \"tri\"") {
		t.Fatalf("dot header:\n%s", dot)
	}
	if strings.Count(dot, "--") != 3 {
		t.Fatalf("edge count in dot:\n%s", dot)
	}
	if strings.Count(dot, "fillcolor") != 3 {
		t.Fatalf("vertex count in dot:\n%s", dot)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	c := ComplexOf(triangle(), mustSimplex(v(3, "d")))
	data, err := c.ToJSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := FromJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Equal(back) {
		t.Fatalf("round trip changed the complex:\n%v\nvs\n%v", c, back)
	}
}

func TestFromJSONRejectsGarbage(t *testing.T) {
	if _, err := FromJSON([]byte("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := FromJSON([]byte(`{"facets":[[{"p":0,"label":"a"},{"p":0,"label":"b"}]]}`)); err == nil {
		t.Fatal("non-chromatic facet accepted")
	}
}

func TestDescribeSummary(t *testing.T) {
	c := ComplexOf(triangle())
	s := c.DescribeSummary()
	for _, want := range []string{"dim=2", "simplexes=7", "facets=1", "chi=1"} {
		if !strings.Contains(s, want) {
			t.Fatalf("summary %q missing %q", s, want)
		}
	}
}
