package topology

import (
	"crypto/sha256"
	"encoding/hex"
	"io"
	"sort"
	"strconv"
	"strings"
)

// FacetEncoding returns a canonical textual encoding of the complex: the
// keys of its facets in sorted (dimension, key) order, each prefixed by
// its byte length so that arbitrary label strings cannot collide. Because
// a complex is determined by its facets, two complexes are Equal if and
// only if their facet encodings are equal; the encoding is therefore a
// sound memoization key for any function of the complex.
func (c *Complex) FacetEncoding() string {
	var b strings.Builder
	for _, s := range c.Facets() {
		key := s.Key()
		b.WriteString(strconv.Itoa(len(key)))
		b.WriteByte(':')
		b.WriteString(key)
		b.WriteByte(';')
	}
	return b.String()
}

// CanonicalHash returns a hex SHA-256 digest canonically identifying the
// complex. It is the cache key used by the homology package's memoized
// engine: equal complexes always hash equal, and distinct complexes
// collide only with cryptographic improbability.
//
// The digest is taken over the sorted, length-prefixed simplex-key set
// rather than FacetEncoding: the two encodings determine each other (a
// complex is its facets' downward closure), but the simplex keys are
// already materialized in the complex's index, so hashing them skips the
// facet computation — CanonicalHash must stay much cheaper than the
// homology it memoizes.
func (c *Complex) CanonicalHash() string {
	keys := make([]string, 0, len(c.simplices))
	for k := range c.simplices {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	h := sha256.New()
	for _, k := range keys {
		io.WriteString(h, strconv.Itoa(len(k)))
		io.WriteString(h, ":")
		io.WriteString(h, k)
		io.WriteString(h, ";")
	}
	return hex.EncodeToString(h.Sum(nil))
}
