package topology

import (
	"crypto/sha256"
	"encoding/hex"
	"io"
	"sort"
	"strconv"
	"strings"
)

// keyOf renders the canonical string key of the entry id sequence, byte
// for byte what Simplex.Key produces on the materialized simplex.
func (c *Complex) keyOf(ids []int32) string {
	n := 0
	for _, id := range ids {
		n += len(c.byID[id].Label) + 12
	}
	var b strings.Builder
	b.Grow(n)
	for i, id := range ids {
		if i > 0 {
			b.WriteByte('|')
		}
		v := c.byID[id]
		b.WriteString(strconv.Itoa(v.P))
		b.WriteByte(':')
		b.WriteString(v.Label)
	}
	return b.String()
}

// FacetEncoding returns a canonical textual encoding of the complex: the
// keys of its facets in sorted (dimension, key) order, each prefixed by
// its byte length so that arbitrary label strings cannot collide. Because
// a complex is determined by its facets, two complexes are Equal if and
// only if their facet encodings are equal; the encoding is therefore a
// sound memoization key for any function of the complex.
func (c *Complex) FacetEncoding() string {
	var b strings.Builder
	for _, s := range c.Facets() {
		key := s.Key()
		b.WriteString(strconv.Itoa(len(key)))
		b.WriteByte(':')
		b.WriteString(key)
		b.WriteByte(';')
	}
	return b.String()
}

// CanonicalHash returns a hex SHA-256 digest canonically identifying the
// complex. It is the cache key used by the homology package's memoized
// engine: equal complexes always hash equal, and distinct complexes
// collide only with cryptographic improbability.
//
// The digest is taken over the sorted, length-prefixed simplex-key set.
// The keys are rendered from the interned entries on demand, but the
// encoding (and therefore the digest) is unchanged from the string-keyed
// representation this core replaced — ReferenceComplex.CanonicalHash is
// differentially tested to agree.
func (c *Complex) CanonicalHash() string {
	keys := make([]string, len(c.entries))
	for ei := range c.entries {
		keys[ei] = c.keyOf(c.entries[ei].ids)
	}
	sort.Strings(keys)
	h := sha256.New()
	for _, k := range keys {
		io.WriteString(h, strconv.Itoa(len(k)))
		io.WriteString(h, ":")
		io.WriteString(h, k)
		io.WriteString(h, ";")
	}
	return hex.EncodeToString(h.Sum(nil))
}
