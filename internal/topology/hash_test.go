package topology

import (
	"strings"
	"testing"
)

func hv(p int, label string) Vertex { return Vertex{P: p, Label: label} }

func TestCanonicalHashEqualComplexesAgree(t *testing.T) {
	build := func() *Complex {
		c := NewComplex()
		c.Add(mustSimplex(hv(0, "a"), hv(1, "b"), hv(2, "c")))
		c.Add(mustSimplex(hv(0, "a"), hv(1, "x")))
		return c
	}
	a, b := build(), build()
	if a.CanonicalHash() != b.CanonicalHash() {
		t.Fatal("equal complexes hash differently")
	}
	// Insertion order must not matter.
	d := NewComplex()
	d.Add(mustSimplex(hv(0, "a"), hv(1, "x")))
	d.Add(mustSimplex(hv(0, "a"), hv(1, "b"), hv(2, "c")))
	if a.CanonicalHash() != d.CanonicalHash() {
		t.Fatal("insertion order changed the hash")
	}
	if a.CanonicalHash() != a.Clone().CanonicalHash() {
		t.Fatal("clone hashes differently")
	}
}

func TestCanonicalHashDistinguishes(t *testing.T) {
	tri := ComplexOf(mustSimplex(hv(0, "a"), hv(1, "b"), hv(2, "c")))
	hollow := NewComplex()
	for i := 0; i < 3; i++ {
		hollow.Add(mustSimplex(hv(0, "a"), hv(1, "b"), hv(2, "c")).Face(i))
	}
	if tri.CanonicalHash() == hollow.CanonicalHash() {
		t.Fatal("solid and hollow triangle hash equal")
	}
	if tri.CanonicalHash() == tri.Skeleton(1).CanonicalHash() {
		t.Fatal("skeleton hashes equal to the full complex")
	}
	if NewComplex().CanonicalHash() == tri.CanonicalHash() {
		t.Fatal("empty complex collides with a triangle")
	}
}

// TestFacetEncodingLengthPrefixed guards the anti-collision property: a
// label containing the separator characters cannot make two different
// complexes encode identically.
func TestFacetEncodingLengthPrefixed(t *testing.T) {
	a := ComplexOf(mustSimplex(hv(0, "x;1:y")))
	b := ComplexOf(mustSimplex(hv(0, "x")), mustSimplex(hv(1, "y")))
	if a.FacetEncoding() == b.FacetEncoding() {
		t.Fatal("separator injection collided two encodings")
	}
	if !strings.Contains(a.FacetEncoding(), ":") {
		t.Fatal("encoding missing length prefix")
	}
}

func TestFacetEncodingMatchesEqual(t *testing.T) {
	a := ComplexOf(mustSimplex(hv(0, "a"), hv(1, "b")), mustSimplex(hv(1, "b"), hv(2, "c")))
	b := a.Union(NewComplex())
	if !a.Equal(b) || a.FacetEncoding() != b.FacetEncoding() {
		t.Fatal("Equal complexes must share a facet encoding")
	}
}
