package topology

// Incidence access to the interned entry table. The homology engine's
// coreduction pass walks face/coface incidences of every stored simplex;
// these accessors expose the entry table directly (dense int32 entry
// indices, no Simplex materialization, no string keys) so that walk runs
// at intern-table speed. Entry indices are stable: entries are
// append-only, so an index obtained here stays valid for the lifetime of
// the complex as long as no further simplexes are added.

// EntryCount returns the number of stored simplexes. Entry indices run
// 0..EntryCount()-1 in insertion order, mixing dimensions.
func (c *Complex) EntryCount() int { return len(c.entries) }

// EntryDim returns the dimension of entry ei (0 for a vertex).
func (c *Complex) EntryDim(ei int32) int { return len(c.entries[ei].ids) - 1 }

// EntrySimplex materializes entry ei as a Simplex (vertices in ascending
// process-id order, the complex's canonical order).
func (c *Complex) EntrySimplex(ei int32) Simplex { return c.simplexAt(ei) }

// EntryFaces appends the entry indices of the codimension-1 faces of
// entry ei to buf and returns the extended slice. Faces are produced in
// vertex-drop order: the i-th appended index is the face omitting the
// i-th vertex of the entry's ascending-process-id sequence, so position i
// carries the orientation sign (-1)^i — the same convention the signed
// boundary builders use. A vertex entry appends nothing. Every face of a
// stored simplex is itself stored (the complex is closed under
// containment), so the appended indices are always valid.
//
// The lookup is read-only (hash probe, never insert) and uses no complex
// scratch state, so concurrent EntryFaces calls — and concurrent readers
// generally — are safe, matching the homology engine's access pattern.
func (c *Complex) EntryFaces(ei int32, buf []int32) []int32 {
	ids := c.entries[ei].ids
	n := len(ids)
	if n <= 1 {
		return buf
	}
	var faceArr [maskWalkLimit]int32
	var face []int32
	if n-1 <= len(faceArr) {
		face = faceArr[:n-1]
	} else {
		face = make([]int32, n-1)
	}
	for i := 0; i < n; i++ {
		copy(face, ids[:i])
		copy(face[i:], ids[i+1:])
		buf = append(buf, c.find(face, hashIDs(face)))
	}
	return buf
}
