package topology

import (
	"sync"
	"testing"
)

// TestEntryFacesDropOrder pins the contract the homology engine's signed
// boundary builders rely on: the i-th appended face index is the face
// omitting the i-th vertex, i.e. EntrySimplex(faces[i]) == s.Face(i).
func TestEntryFacesDropOrder(t *testing.T) {
	c := ComplexOf(
		mustSimplex(v(0, "a"), v(1, "b"), v(2, "c"), v(3, "d")),
		mustSimplex(v(2, "x"), v(4, "y")),
	)
	var buf []int32
	for ei := int32(0); ei < int32(c.EntryCount()); ei++ {
		s := c.EntrySimplex(ei)
		if got, want := c.EntryDim(ei), len(s)-1; got != want {
			t.Fatalf("entry %d: EntryDim = %d, want %d", ei, got, want)
		}
		buf = c.EntryFaces(ei, buf[:0])
		if len(s) == 1 {
			if len(buf) != 0 {
				t.Fatalf("vertex entry %d: EntryFaces = %v, want none", ei, buf)
			}
			continue
		}
		if len(buf) != len(s) {
			t.Fatalf("entry %d (%v): %d faces, want %d", ei, s, len(buf), len(s))
		}
		for i, fi := range buf {
			if fi < 0 || fi >= int32(c.EntryCount()) {
				t.Fatalf("entry %d face %d: index %d out of range", ei, i, fi)
			}
			want := s.Face(i)
			if got := c.EntrySimplex(fi); got.Key() != want.Key() {
				t.Fatalf("entry %d (%v) face %d: got %v, want %v", ei, s, i, got, want)
			}
		}
	}
}

// TestEntryFacesCoversBoundary checks that per-dimension entry counts
// agree with the f-vector and that every codim-1 simplex is reachable as
// a face of something one dimension up.
func TestEntryFacesCoversBoundary(t *testing.T) {
	c := ComplexOf(
		mustSimplex(v(0, "a"), v(1, "b"), v(2, "c")),
		mustSimplex(v(0, "a"), v(3, "d")),
	)
	fv := c.FVector()
	byDim := make([]int, c.Dim()+1)
	seen := make(map[int32]bool)
	var buf []int32
	for ei := int32(0); ei < int32(c.EntryCount()); ei++ {
		byDim[c.EntryDim(ei)]++
		for _, fi := range c.EntryFaces(ei, buf[:0]) {
			seen[fi] = true
		}
	}
	for d, want := range fv {
		if byDim[d] != want {
			t.Fatalf("dim %d: %d entries, f-vector says %d", d, byDim[d], want)
		}
	}
	// Everything except the facets must appear as somebody's face.
	wantSeen := c.Size() - len(c.Facets())
	if len(seen) != wantSeen {
		t.Fatalf("%d distinct faces seen, want %d", len(seen), wantSeen)
	}
}

// TestEntryFacesConcurrent exercises the documented read-only guarantee
// under the race detector: many goroutines walking faces of a shared
// complex concurrently.
func TestEntryFacesConcurrent(t *testing.T) {
	c := ComplexOf(mustSimplex(v(0, "a"), v(1, "b"), v(2, "c"), v(3, "d"), v(4, "e")))
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var buf []int32
			total := 0
			for ei := int32(0); ei < int32(c.EntryCount()); ei++ {
				buf = c.EntryFaces(ei, buf[:0])
				total += len(buf)
			}
			if total == 0 {
				t.Error("no faces walked")
			}
		}()
	}
	wg.Wait()
}
