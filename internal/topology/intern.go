package topology

import "math/bits"

// The interned complex core.
//
// A Complex stores each distinct vertex once in a per-complex intern table
// (Vertex -> dense int32 id) and each simplex as its vertex-id sequence in
// ascending process-id order, the same canonical order Simplex itself
// maintains. Simplexes are indexed by a cheap 64-bit hash of the id
// sequence with collision buckets, so membership tests and face closure
// never build string keys. Id slices are carved out of a chunked arena to
// keep one Add from costing one allocation per face.

// simplexEntry is one stored simplex: its interned vertex ids in ascending
// process-id order. Entries are append-only and immutable once inserted.
type simplexEntry struct {
	ids []int32
}

// arenaChunk is the growth quantum of the id arena. Old chunks stay
// referenced by the entries carved from them; only the slack at the end of
// a chunk is ever wasted.
const arenaChunk = 8192

// maskWalkLimit bounds the bitmask closure walk: simplexes with more
// vertices fall back to a recursive face closure. Chromatic simplexes have
// one vertex per process, so real workloads sit far below this.
const maskWalkLimit = 25

// intern returns the dense id of v, assigning the next id on first sight.
func (c *Complex) intern(v Vertex) int32 {
	if id, ok := c.verts[v]; ok {
		return id
	}
	id := int32(len(c.byID))
	c.verts[v] = id
	c.byID = append(c.byID, v)
	return id
}

// hashIDs mixes an id sequence into a 64-bit bucket key (splitmix-style
// rounds; collisions are resolved by exact comparison in find).
func hashIDs(ids []int32) uint64 {
	h := uint64(0x9e3779b97f4a7c15)
	for _, id := range ids {
		h ^= uint64(uint32(id))
		h *= 0xbf58476d1ce4e5b9
		h ^= h >> 29
	}
	return h
}

// find returns the entry index storing exactly ids (hashed to h), or -1.
func (c *Complex) find(ids []int32, h uint64) int32 {
	for _, ei := range c.table[h] {
		e := c.entries[ei].ids
		if len(e) != len(ids) {
			continue
		}
		match := true
		for i := range e {
			if e[i] != ids[i] {
				match = false
				break
			}
		}
		if match {
			return ei
		}
	}
	return -1
}

// allocIDs copies ids into the arena and returns the stable copy.
func (c *Complex) allocIDs(ids []int32) []int32 {
	n := len(ids)
	if cap(c.arena)-len(c.arena) < n {
		grow := arenaChunk
		if grow < n {
			grow = n
		}
		c.arena = make([]int32, 0, grow)
	}
	off := len(c.arena)
	c.arena = c.arena[:off+n]
	dst := c.arena[off : off+n : off+n]
	copy(dst, ids)
	return dst
}

// insert stores ids (hashed to h) as a new entry, updating the f-vector
// and dimension. The caller must have checked absence.
func (c *Complex) insert(ids []int32, h uint64) {
	ei := int32(len(c.entries))
	c.entries = append(c.entries, simplexEntry{ids: c.allocIDs(ids)})
	c.table[h] = append(c.table[h], ei)
	d := len(ids) - 1
	for len(c.counts) <= d {
		c.counts = append(c.counts, 0)
	}
	c.counts[d]++
	if d > c.dim {
		c.dim = d
	}
}

// insertIfAbsent inserts ids unless present; it performs no face closure,
// so callers must guarantee every face of ids is (or will be) inserted.
func (c *Complex) insertIfAbsent(ids []int32) {
	h := hashIDs(ids)
	if c.find(ids, h) < 0 {
		c.insert(ids, h)
	}
}

// internSimplex interns the vertices of s and returns their ids in s's own
// (ascending process-id) order, reusing the complex's scratch buffer. The
// result is only valid until the next internSimplex call.
func (c *Complex) internSimplex(s Simplex) []int32 {
	if cap(c.idBuf) < len(s) {
		c.idBuf = make([]int32, len(s))
	}
	ids := c.idBuf[:len(s)]
	for i, v := range s {
		ids[i] = c.intern(v)
	}
	return ids
}

// lookupIDs maps s to its id sequence without interning. It reports false
// if some vertex has never been seen (so s cannot be present). It
// allocates its own buffer: lookups are read-only and must stay safe under
// concurrent readers (the homology engine hashes and indexes shared
// complexes from several goroutines).
func (c *Complex) lookupIDs(s Simplex) ([]int32, bool) {
	ids := make([]int32, len(s))
	for i, v := range s {
		id, ok := c.verts[v]
		if !ok {
			return nil, false
		}
		ids[i] = id
	}
	return ids, true
}

// addDirect inserts s without a closure walk; valid only when the caller
// adds a face-closed set of simplexes entry by entry.
func (c *Complex) addDirect(s Simplex) {
	c.insertIfAbsent(c.internSimplex(s))
}

// addClosure inserts ids and every nonempty face, walking the subset
// lattice iteratively by bitmask. A face found present is skipped together
// with its whole subtree — the complex is closed under containment, so
// every subset of a present face is already present. This is the hot inner
// loop of every model constructor.
func (c *Complex) addClosure(ids []int32) {
	n := len(ids)
	if n == 0 {
		return
	}
	h := hashIDs(ids)
	if c.find(ids, h) >= 0 {
		return // fast path: facet re-added by an enumerator
	}
	if n > maskWalkLimit {
		c.addClosureRecursive(ids)
		return
	}
	full := uint32(1)<<uint(n) - 1
	words := (int(full) >> 6) + 1
	if cap(c.visited) < words {
		c.visited = make([]uint64, words)
	} else {
		c.visited = c.visited[:words]
		for i := range c.visited {
			c.visited[i] = 0
		}
	}
	if cap(c.subBuf) < n {
		c.subBuf = make([]int32, n)
	}
	sub := c.subBuf
	stack := c.maskStack[:0]
	stack = append(stack, full)
	for len(stack) > 0 {
		mask := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if c.visited[mask>>6]>>(mask&63)&1 == 1 {
			continue
		}
		c.visited[mask>>6] |= 1 << (mask & 63)
		k := 0
		for m := mask; m != 0; m &= m - 1 {
			sub[k] = ids[bits.TrailingZeros32(m)]
			k++
		}
		sh := hashIDs(sub[:k])
		if c.find(sub[:k], sh) >= 0 {
			continue // whole subtree already present
		}
		c.insert(sub[:k], sh)
		for m := mask; m != 0; m &= m - 1 {
			child := mask &^ (1 << uint(bits.TrailingZeros32(m)))
			if child != 0 {
				stack = append(stack, child)
			}
		}
	}
	c.maskStack = stack[:0]
}

// addClosureRecursive is the fallback closure for simplexes too large for
// the bitmask walk; it mirrors the former recursive Add.
func (c *Complex) addClosureRecursive(ids []int32) {
	h := hashIDs(ids)
	if c.find(ids, h) >= 0 {
		return
	}
	c.insert(ids, h)
	if len(ids) == 1 {
		return
	}
	face := make([]int32, len(ids)-1)
	for i := range ids {
		copy(face, ids[:i])
		copy(face[i:], ids[i+1:])
		c.addClosureRecursive(face)
	}
}

// simplexAt materializes the entry at index ei as a Simplex.
func (c *Complex) simplexAt(ei int32) Simplex {
	ids := c.entries[ei].ids
	s := make(Simplex, len(ids))
	for i, id := range ids {
		s[i] = c.byID[id]
	}
	return s
}

// translationTo returns a map from d's vertex ids to c's, interning every
// vertex of d into c (used by UnionWith, where all of d is inserted).
func (c *Complex) translationTo(d *Complex) []int32 {
	trans := make([]int32, len(d.byID))
	for i, v := range d.byID {
		trans[i] = c.intern(v)
	}
	return trans
}

// lookupTranslation maps d's vertex ids to c's without interning; absent
// vertices map to -1 (used by membership-only paths).
func (c *Complex) lookupTranslation(d *Complex) []int32 {
	trans := make([]int32, len(d.byID))
	for i, v := range d.byID {
		if id, ok := c.verts[v]; ok {
			trans[i] = id
		} else {
			trans[i] = -1
		}
	}
	return trans
}

// translate maps entry ids through trans into buf; it reports false if a
// vertex is missing (trans value -1). Ascending process-id order is
// preserved because translation never changes a vertex's process id.
func translate(ids []int32, trans []int32, buf []int32) ([]int32, bool) {
	for i, id := range ids {
		t := trans[id]
		if t < 0 {
			return nil, false
		}
		buf[i] = t
	}
	return buf[:len(ids)], true
}
