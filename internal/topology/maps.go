package topology

import (
	"fmt"
	"sort"
)

// VertexMap carries vertices of one complex to vertices of another. The
// paper's lemmas (11, 14, 19) exhibit explicit vertex maps L between
// protocol complexes and pseudospheres; VerifyIsomorphism checks those maps
// mechanically.
type VertexMap map[Vertex]Vertex

// Apply carries a simplex through the map. It reports an error if some
// vertex is not in the map's domain or the image is not a simplex (i.e. the
// map is not color-preserving enough to keep vertices distinct).
func (m VertexMap) Apply(s Simplex) (Simplex, error) {
	imgs := make([]Vertex, len(s))
	for i, v := range s {
		w, ok := m[v]
		if !ok {
			return nil, fmt.Errorf("topology: vertex %v not in map domain", v)
		}
		imgs[i] = w
	}
	return NewSimplex(imgs...)
}

// IsSimplicial reports whether m carries every simplex of src to a simplex
// of dst.
func (m VertexMap) IsSimplicial(src, dst *Complex) error {
	for _, s := range src.AllSimplices() {
		img, err := m.Apply(s)
		if err != nil {
			return fmt.Errorf("map not simplicial on %v: %w", s, err)
		}
		if !dst.Has(img) {
			return fmt.Errorf("image %v of %v is not a simplex of the target", img, s)
		}
	}
	return nil
}

// Inverse returns the inverse map; it reports an error if m is not
// injective.
func (m VertexMap) Inverse() (VertexMap, error) {
	inv := make(VertexMap, len(m))
	for v, w := range m {
		if prev, ok := inv[w]; ok {
			return nil, fmt.Errorf("topology: map is not injective: %v and %v both map to %v", prev, v, w)
		}
		inv[w] = v
	}
	return inv, nil
}

// VerifyIsomorphism checks that m is a simplicial isomorphism from src onto
// dst: a bijection on vertices that is simplicial in both directions. This
// is the notion of isomorphism (surjective, one-to-one simplicial map) used
// throughout the paper.
func VerifyIsomorphism(src, dst *Complex, m VertexMap) error {
	srcVerts := src.Vertices()
	dstVerts := dst.Vertices()
	if len(srcVerts) != len(dstVerts) {
		return fmt.Errorf("topology: vertex counts differ: %d vs %d", len(srcVerts), len(dstVerts))
	}
	if len(m) != len(srcVerts) {
		return fmt.Errorf("topology: map domain has %d vertices, complex has %d", len(m), len(srcVerts))
	}
	for _, v := range srcVerts {
		if _, ok := m[v]; !ok {
			return fmt.Errorf("topology: vertex %v of source not in map domain", v)
		}
	}
	inv, err := m.Inverse()
	if err != nil {
		return err
	}
	for _, w := range dstVerts {
		if _, ok := inv[w]; !ok {
			return fmt.Errorf("topology: vertex %v of target not in map image", w)
		}
	}
	if err := m.IsSimplicial(src, dst); err != nil {
		return fmt.Errorf("topology: forward direction: %w", err)
	}
	if err := inv.IsSimplicial(dst, src); err != nil {
		return fmt.Errorf("topology: inverse direction: %w", err)
	}
	return nil
}

// ChromaticIsomorphic searches for a color-preserving simplicial
// isomorphism between two complexes by backtracking over per-process label
// bijections. It is intended for small complexes (tests); the explicit
// VerifyIsomorphism path is preferred where the paper gives the map.
func ChromaticIsomorphic(a, b *Complex) bool {
	if a.Size() != b.Size() || a.Dim() != b.Dim() {
		return false
	}
	labelsA := labelsByProcess(a)
	labelsB := labelsByProcess(b)
	if len(labelsA) != len(labelsB) {
		return false
	}
	ids := make([]int, 0, len(labelsA))
	for p := range labelsA {
		if len(labelsA[p]) != len(labelsB[p]) {
			return false
		}
		ids = append(ids, p)
	}
	sort.Ints(ids)
	m := make(VertexMap)
	return matchProcess(a, b, ids, 0, labelsA, labelsB, m)
}

func labelsByProcess(c *Complex) map[int][]string {
	out := make(map[int][]string)
	for _, v := range c.Vertices() {
		out[v.P] = append(out[v.P], v.Label)
	}
	for p := range out {
		sort.Strings(out[p])
	}
	return out
}

// matchProcess assigns a bijection between the labels of process ids[i] in
// a and b, then recurses; when all processes are assigned, it verifies the
// full map. Degree-based pruning keeps the search tractable on the small
// complexes used in tests.
func matchProcess(a, b *Complex, ids []int, i int, la, lb map[int][]string, m VertexMap) bool {
	if i == len(ids) {
		return VerifyIsomorphism(a, b, m) == nil
	}
	p := ids[i]
	return permute(la[p], lb[p], func(pairing map[string]string) bool {
		for s, t := range pairing {
			m[Vertex{P: p, Label: s}] = Vertex{P: p, Label: t}
		}
		ok := partialConsistent(a, b, m) && matchProcess(a, b, ids, i+1, la, lb, m)
		if !ok {
			for s := range pairing {
				delete(m, Vertex{P: p, Label: s})
			}
		}
		return ok
	})
}

// permute enumerates bijections from xs onto ys, invoking try on each; it
// stops and reports true as soon as try does.
func permute(xs, ys []string, try func(map[string]string) bool) bool {
	n := len(xs)
	used := make([]bool, n)
	pairing := make(map[string]string, n)
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == n {
			return try(pairing)
		}
		for j := 0; j < n; j++ {
			if used[j] {
				continue
			}
			used[j] = true
			pairing[xs[i]] = ys[j]
			if rec(i + 1) {
				return true
			}
			delete(pairing, xs[i])
			used[j] = false
		}
		return false
	}
	return rec(0)
}

// partialConsistent checks that every simplex of a whose vertices are all
// in the current partial map lands in b, and symmetrically for edge counts;
// a cheap prune for the backtracking search.
func partialConsistent(a, b *Complex, m VertexMap) bool {
	for _, s := range a.AllSimplices() {
		img := make([]Vertex, 0, len(s))
		full := true
		for _, v := range s {
			w, ok := m[v]
			if !ok {
				full = false
				break
			}
			img = append(img, w)
		}
		if !full {
			continue
		}
		t, err := NewSimplex(img...)
		if err != nil || !b.Has(t) {
			return false
		}
	}
	return true
}
