package topology

// mustSimplex is NewSimplex for statically-correct test inputs; it
// panics on error so call sites stay one-line literals.
func mustSimplex(vs ...Vertex) Simplex {
	s, err := NewSimplex(vs...)
	if err != nil {
		panic(err)
	}
	return s
}
