package topology

import (
	"fmt"
	"sort"
)

// Cone returns the cone over c: the join of c with a fresh apex vertex.
// The apex process id must not occur in c. Cones are contractible, which
// the homology tests use to validate the engine.
func Cone(c *Complex, apex Vertex) (*Complex, error) {
	for _, p := range c.IDs() {
		if p == apex.P {
			return nil, fmt.Errorf("topology: apex id %d already occurs in the complex", apex.P)
		}
	}
	out := c.Clone()
	out.Add(Simplex{apex})
	for _, s := range c.AllSimplices() {
		j, err := s.Join(Simplex{apex})
		if err != nil {
			return nil, err
		}
		out.Add(j)
	}
	return out, nil
}

// Suspension returns the suspension of c: the union of two cones with
// distinct apexes. Suspension shifts reduced homology up by one degree
// (the suspension isomorphism), giving the tests a nontrivial invariant
// to check the engine against.
func Suspension(c *Complex, north, south Vertex) (*Complex, error) {
	if north.P == south.P {
		return nil, fmt.Errorf("topology: suspension apexes must have distinct process ids")
	}
	up, err := Cone(c, north)
	if err != nil {
		return nil, err
	}
	down, err := Cone(c, south)
	if err != nil {
		return nil, err
	}
	return up.Union(down), nil
}

// ConnectedComponents partitions the vertices of c by 1-skeleton
// connectivity and returns the components as full subcomplexes, sorted by
// their smallest vertex.
func (c *Complex) ConnectedComponents() []*Complex {
	verts := c.Vertices()
	if len(verts) == 0 {
		return nil
	}
	idx := make(map[Vertex]int, len(verts))
	for i, v := range verts {
		idx[v] = i
	}
	parent := make([]int, len(verts))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, e := range c.Simplices(1) {
		a, b := find(idx[e[0]]), find(idx[e[1]])
		parent[a] = b
	}
	byRoot := make(map[int]*Complex)
	for _, s := range c.AllSimplices() {
		root := find(idx[s[0]])
		comp, ok := byRoot[root]
		if !ok {
			comp = NewComplex()
			byRoot[root] = comp
		}
		comp.Add(s)
	}
	out := make([]*Complex, 0, len(byRoot))
	for _, comp := range byRoot {
		out = append(out, comp)
	}
	sort.Slice(out, func(i, j int) bool {
		vi, vj := out[i].Vertices()[0], out[j].Vertices()[0]
		if vi.P != vj.P {
			return vi.P < vj.P
		}
		return vi.Label < vj.Label
	})
	return out
}

// EdgeGraph returns the 1-skeleton as an adjacency list keyed by vertex.
func (c *Complex) EdgeGraph() map[Vertex][]Vertex {
	g := make(map[Vertex][]Vertex)
	for _, v := range c.Vertices() {
		g[v] = nil
	}
	for _, e := range c.Simplices(1) {
		g[e[0]] = append(g[e[0]], e[1])
		g[e[1]] = append(g[e[1]], e[0])
	}
	for v := range g {
		vs := g[v]
		sort.Slice(vs, func(i, j int) bool {
			if vs[i].P != vs[j].P {
				return vs[i].P < vs[j].P
			}
			return vs[i].Label < vs[j].Label
		})
	}
	return g
}
