package topology

import "testing"

func circle3() *Complex {
	return ComplexOf(
		mustSimplex(v(0, "a"), v(1, "b")),
		mustSimplex(v(1, "b"), v(2, "c")),
		mustSimplex(v(0, "a"), v(2, "c")),
	)
}

func TestConeAddsApexToEverySimplex(t *testing.T) {
	c := circle3()
	cone, err := Cone(c, v(3, "apex"))
	if err != nil {
		t.Fatal(err)
	}
	// Circle: 3 vertices + 3 edges; cone adds apex, 3 edges, 3 triangles.
	if cone.Size() != 6+1+3+3 {
		t.Fatalf("cone size = %d, want 13", cone.Size())
	}
	if cone.Dim() != 2 {
		t.Fatalf("cone dim = %d", cone.Dim())
	}
	if _, err := Cone(c, v(0, "apex")); err == nil {
		t.Fatal("apex id collision accepted")
	}
}

func TestSuspensionStructure(t *testing.T) {
	// Suspension of two points (S^0) is a circle (S^1).
	two := ComplexOf(mustSimplex(v(0, "a")), mustSimplex(v(0, "b")))
	sus, err := Suspension(two, v(1, "n"), v(2, "s"))
	if err != nil {
		t.Fatal(err)
	}
	fv := sus.FVector()
	if fv[0] != 4 || fv[1] != 4 {
		t.Fatalf("suspension f-vector = %v, want a 4-cycle", fv)
	}
	if _, err := Suspension(two, v(1, "n"), v(1, "s")); err == nil {
		t.Fatal("equal apex ids accepted")
	}
}

func TestConnectedComponents(t *testing.T) {
	c := ComplexOf(
		mustSimplex(v(0, "a"), v(1, "b")),
		mustSimplex(v(0, "x"), v(1, "y"), v(2, "z")),
		mustSimplex(v(2, "solo")),
	)
	comps := c.ConnectedComponents()
	if len(comps) != 3 {
		t.Fatalf("components = %d, want 3", len(comps))
	}
	total := 0
	for _, comp := range comps {
		total += comp.Size()
	}
	if total != c.Size() {
		t.Fatalf("components cover %d simplexes, complex has %d", total, c.Size())
	}
	if len(circle3().ConnectedComponents()) != 1 {
		t.Fatal("circle should be one component")
	}
	var empty Complex
	_ = empty
	if got := NewComplex().ConnectedComponents(); got != nil {
		t.Fatalf("empty complex components = %v", got)
	}
}

func TestEdgeGraph(t *testing.T) {
	g := circle3().EdgeGraph()
	if len(g) != 3 {
		t.Fatalf("graph has %d vertices", len(g))
	}
	for vert, nbrs := range g {
		if len(nbrs) != 2 {
			t.Fatalf("vertex %v has %d neighbors, want 2", vert, len(nbrs))
		}
	}
}

// TestConeSizeQuick property-checks |Cone(c)| = 2|c| + 1.
func TestConeSizeQuick(t *testing.T) {
	for labels := 1; labels <= 3; labels++ {
		c := NewComplex()
		for a := 0; a < labels; a++ {
			for b := 0; b < labels; b++ {
				c.Add(mustSimplex(
					Vertex{P: 0, Label: string(rune('a' + a))},
					Vertex{P: 1, Label: string(rune('a' + b))},
				))
			}
		}
		cone, err := Cone(c, Vertex{P: 5, Label: "apex"})
		if err != nil {
			t.Fatal(err)
		}
		if cone.Size() != 2*c.Size()+1 {
			t.Fatalf("labels=%d: cone size %d, want %d", labels, cone.Size(), 2*c.Size()+1)
		}
	}
}
