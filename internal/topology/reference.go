package topology

import (
	"crypto/sha256"
	"encoding/hex"
	"io"
	"sort"
	"strconv"
)

// ReferenceComplex is the original string-keyed complex builder, retained
// verbatim as the differential-testing oracle for the interned Complex
// core: it stores simplexes in a map keyed by Simplex.Key and closes faces
// by recursion. It is deliberately simple and slow; nothing outside tests
// should construct one.
type ReferenceComplex struct {
	simplices map[string]Simplex
	dim       int
}

// NewReferenceComplex returns an empty reference complex.
func NewReferenceComplex() *ReferenceComplex {
	return &ReferenceComplex{simplices: make(map[string]Simplex), dim: -1}
}

// Add inserts s and all of its nonempty faces, exactly as the pre-interned
// Complex.Add did.
func (c *ReferenceComplex) Add(s Simplex) {
	if len(s) == 0 {
		return
	}
	key := s.Key()
	if _, ok := c.simplices[key]; ok {
		return
	}
	c.simplices[key] = s
	if s.Dim() > c.dim {
		c.dim = s.Dim()
	}
	for i := range s {
		c.Add(s.Face(i))
	}
}

// Has reports whether s is a simplex of the reference complex.
func (c *ReferenceComplex) Has(s Simplex) bool {
	if len(s) == 0 {
		return len(c.simplices) > 0
	}
	_, ok := c.simplices[s.Key()]
	return ok
}

// Size returns the total number of nonempty simplexes.
func (c *ReferenceComplex) Size() int { return len(c.simplices) }

// Dim returns the dimension (-1 if empty).
func (c *ReferenceComplex) Dim() int { return c.dim }

// FVector returns the f-vector, like Complex.FVector.
func (c *ReferenceComplex) FVector() []int {
	if c.dim < 0 {
		return nil
	}
	fv := make([]int, c.dim+1)
	for _, s := range c.simplices {
		fv[s.Dim()]++
	}
	return fv
}

// AllSimplices returns every simplex sorted by dimension then key.
func (c *ReferenceComplex) AllSimplices() []Simplex {
	out := make([]Simplex, 0, len(c.simplices))
	for _, s := range c.simplices {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i]) != len(out[j]) {
			return len(out[i]) < len(out[j])
		}
		return out[i].Key() < out[j].Key()
	})
	return out
}

// CanonicalHash hashes the sorted, length-prefixed key set with the same
// encoding as Complex.CanonicalHash; equal simplex sets hash equal across
// the two representations.
func (c *ReferenceComplex) CanonicalHash() string {
	keys := make([]string, 0, len(c.simplices))
	for k := range c.simplices {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	h := sha256.New()
	for _, k := range keys {
		io.WriteString(h, strconv.Itoa(len(k)))
		io.WriteString(h, ":")
		io.WriteString(h, k)
		io.WriteString(h, ";")
	}
	return hex.EncodeToString(h.Sum(nil))
}

// ToComplex rebuilds an interned Complex holding exactly the same simplex
// set (by re-adding every simplex; the set is already face-closed).
func (c *ReferenceComplex) ToComplex() *Complex {
	out := NewComplex()
	for _, s := range c.AllSimplices() {
		out.addDirect(s)
	}
	return out
}
