// Package topology implements the combinatorial-topology substrate used by
// the pseudosphere constructions of Herlihy, Rajsbaum, and Tuttle (PODC
// 1998): chromatic vertices, simplexes, and simplicial complexes closed
// under containment, together with the elementary operations (faces, stars,
// unions, intersections, skeletons, joins, subdivisions, simplicial maps)
// that the paper's proofs use.
//
// All complexes in the paper are chromatic: every vertex carries a process
// id ("color"), and the vertices of any simplex carry distinct ids. This
// package enforces chromaticity, which both matches the paper's definitions
// and keeps canonical encodings cheap.
package topology

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Vertex is a chromatic vertex: a process id (the color) paired with a
// canonical label. Two vertices are the same point if and only if both
// fields are equal. Model packages encode local states (heard-from sets,
// microround view vectors, nested full-information views) into canonical
// label strings, so that global states that share a local state share a
// vertex, exactly as in the paper's protocol complexes.
type Vertex struct {
	P     int    // process id; must be >= 0
	Label string // canonical encoding of the local state or value
}

// String returns a compact human-readable form, e.g. "P2:011".
func (v Vertex) String() string {
	return fmt.Sprintf("P%d:%s", v.P, v.Label)
}

// Simplex is a finite set of chromatic vertices with pairwise-distinct
// process ids, kept sorted by process id. The zero value is the empty
// simplex (dimension -1). Simplexes are immutable by convention: none of
// the methods mutate the receiver, and callers must not modify a Simplex
// after passing it to a Complex.
type Simplex []Vertex

// NewSimplex builds a simplex from the given vertices, sorting them by
// process id. It reports an error if two vertices share a process id but
// differ, or if a process id is negative. Exact duplicates are collapsed.
func NewSimplex(vs ...Vertex) (Simplex, error) {
	s := make(Simplex, 0, len(vs))
	s = append(s, vs...)
	sort.Slice(s, func(i, j int) bool {
		if s[i].P != s[j].P {
			return s[i].P < s[j].P
		}
		return s[i].Label < s[j].Label
	})
	out := s[:0]
	for i, v := range s {
		if v.P < 0 {
			return nil, fmt.Errorf("topology: vertex %v has negative process id", v)
		}
		if i > 0 && v.P == s[i-1].P {
			if v.Label != s[i-1].Label {
				return nil, fmt.Errorf("topology: simplex is not chromatic: two vertices with process id %d (%q, %q)", v.P, s[i-1].Label, v.Label)
			}
			continue // exact duplicate
		}
		out = append(out, v)
	}
	return out, nil
}

// Dim returns the dimension of the simplex: one less than the number of
// vertices. The empty simplex has dimension -1.
func (s Simplex) Dim() int { return len(s) - 1 }

// IDs returns the sorted process ids of the simplex's vertices.
func (s Simplex) IDs() []int {
	ids := make([]int, len(s))
	for i, v := range s {
		ids[i] = v.P
	}
	return ids
}

// Labels returns the vertex labels in process-id order.
func (s Simplex) Labels() []string {
	ls := make([]string, len(s))
	for i, v := range s {
		ls[i] = v.Label
	}
	return ls
}

// LabelOf returns the label of the vertex with the given process id, and
// whether the simplex has such a vertex.
func (s Simplex) LabelOf(p int) (string, bool) {
	for _, v := range s {
		if v.P == p {
			return v.Label, true
		}
	}
	return "", false
}

// HasID reports whether some vertex of the simplex has the given process id.
func (s Simplex) HasID(p int) bool {
	_, ok := s.LabelOf(p)
	return ok
}

// HasVertex reports whether v is a vertex of s.
func (s Simplex) HasVertex(v Vertex) bool {
	for _, w := range s {
		if w == v {
			return true
		}
	}
	return false
}

// Key returns a canonical string key identifying the simplex. Two simplexes
// are equal if and only if their keys are equal. Key is on the hot path of
// every chain-complex and hash computation, so it avoids fmt.
func (s Simplex) Key() string {
	n := 0
	for _, v := range s {
		n += len(v.Label) + 12
	}
	var b strings.Builder
	b.Grow(n)
	for i, v := range s {
		if i > 0 {
			b.WriteByte('|')
		}
		b.WriteString(strconv.Itoa(v.P))
		b.WriteByte(':')
		b.WriteString(v.Label)
	}
	return b.String()
}

// Equal reports whether s and t are the same simplex.
func (s Simplex) Equal(t Simplex) bool {
	if len(s) != len(t) {
		return false
	}
	for i := range s {
		if s[i] != t[i] {
			return false
		}
	}
	return true
}

// Face returns the codimension-1 face obtained by omitting the i-th vertex
// (in process-id order).
func (s Simplex) Face(i int) Simplex {
	f := make(Simplex, 0, len(s)-1)
	f = append(f, s[:i]...)
	f = append(f, s[i+1:]...)
	return f
}

// WithoutID returns the face obtained by dropping the vertex with process
// id p (s itself if absent).
func (s Simplex) WithoutID(p int) Simplex {
	for i, v := range s {
		if v.P == p {
			return s.Face(i)
		}
	}
	return s
}

// WithoutIDs returns the face obtained by dropping every vertex whose
// process id is in the given set.
func (s Simplex) WithoutIDs(ids map[int]bool) Simplex {
	f := make(Simplex, 0, len(s))
	for _, v := range s {
		if !ids[v.P] {
			f = append(f, v)
		}
	}
	return f
}

// Restrict returns the face of s spanned by the vertices whose ids are in
// keep.
func (s Simplex) Restrict(keep map[int]bool) Simplex {
	f := make(Simplex, 0, len(s))
	for _, v := range s {
		if keep[v.P] {
			f = append(f, v)
		}
	}
	return f
}

// IsFaceOf reports whether every vertex of s is a vertex of t.
func (s Simplex) IsFaceOf(t Simplex) bool {
	if len(s) > len(t) {
		return false
	}
	i := 0
	for _, v := range s {
		for i < len(t) && t[i] != v {
			i++
		}
		if i == len(t) {
			return false
		}
		i++
	}
	return true
}

// Intersect returns the common face of s and t: the simplex spanned by the
// vertices that appear in both.
func (s Simplex) Intersect(t Simplex) Simplex {
	var f Simplex
	i, j := 0, 0
	for i < len(s) && j < len(t) {
		switch {
		case s[i].P < t[j].P:
			i++
		case s[i].P > t[j].P:
			j++
		default:
			if s[i] == t[j] {
				f = append(f, s[i])
			}
			i++
			j++
		}
	}
	return f
}

// Join returns the simplex spanned by the vertices of s and t together. It
// reports an error if the result would not be chromatic.
func (s Simplex) Join(t Simplex) (Simplex, error) {
	vs := make([]Vertex, 0, len(s)+len(t))
	vs = append(vs, s...)
	vs = append(vs, t...)
	return NewSimplex(vs...)
}

// String returns a readable rendering such as "(P0:0, P1:1)".
func (s Simplex) String() string {
	parts := make([]string, len(s))
	for i, v := range s {
		parts[i] = v.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// ProperFaces returns all proper faces of s (including the empty simplex's
// immediate predecessors down to vertices; the empty simplex itself is not
// returned). The result has 2^(dim+1)-2 simplexes.
func (s Simplex) ProperFaces() []Simplex {
	n := len(s)
	var out []Simplex
	for mask := 1; mask < (1<<n)-1; mask++ {
		f := make(Simplex, 0, n)
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				f = append(f, s[i])
			}
		}
		out = append(out, f)
	}
	return out
}
