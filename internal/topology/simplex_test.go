package topology

import (
	"testing"
	"testing/quick"
)

func v(p int, label string) Vertex { return Vertex{P: p, Label: label} }

func TestNewSimplexSortsByProcess(t *testing.T) {
	s, err := NewSimplex(v(2, "c"), v(0, "a"), v(1, "b"))
	if err != nil {
		t.Fatalf("NewSimplex: %v", err)
	}
	if got := s.IDs(); got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Fatalf("ids not sorted: %v", got)
	}
	if s.Dim() != 2 {
		t.Fatalf("dim = %d, want 2", s.Dim())
	}
}

func TestNewSimplexRejectsNonChromatic(t *testing.T) {
	if _, err := NewSimplex(v(0, "a"), v(0, "b")); err == nil {
		t.Fatal("expected error for two labels on one process")
	}
	if _, err := NewSimplex(Vertex{P: -1, Label: "x"}); err == nil {
		t.Fatal("expected error for negative process id")
	}
}

func TestNewSimplexCollapsesDuplicates(t *testing.T) {
	s, err := NewSimplex(v(0, "a"), v(0, "a"), v(1, "b"))
	if err != nil {
		t.Fatalf("NewSimplex: %v", err)
	}
	if s.Dim() != 1 {
		t.Fatalf("dim = %d, want 1", s.Dim())
	}
}

func TestSimplexFaces(t *testing.T) {
	s := mustSimplex(v(0, "a"), v(1, "b"), v(2, "c"))
	f := s.Face(1)
	if f.Dim() != 1 || f.HasID(1) {
		t.Fatalf("Face(1) = %v", f)
	}
	if !f.IsFaceOf(s) {
		t.Fatal("face not recognized as face")
	}
	if s.IsFaceOf(f) {
		t.Fatal("simplex is not a face of its own face")
	}
	if got := len(s.ProperFaces()); got != 6 {
		t.Fatalf("proper faces = %d, want 6", got)
	}
}

func TestSimplexWithoutAndRestrict(t *testing.T) {
	s := mustSimplex(v(0, "a"), v(1, "b"), v(2, "c"))
	if got := s.WithoutID(1); got.Dim() != 1 || got.HasID(1) {
		t.Fatalf("WithoutID = %v", got)
	}
	if got := s.WithoutIDs(map[int]bool{0: true, 2: true}); got.Dim() != 0 || !got.HasID(1) {
		t.Fatalf("WithoutIDs = %v", got)
	}
	if got := s.Restrict(map[int]bool{0: true, 2: true}); got.Dim() != 1 || got.HasID(1) {
		t.Fatalf("Restrict = %v", got)
	}
}

func TestSimplexIntersect(t *testing.T) {
	s := mustSimplex(v(0, "a"), v(1, "b"), v(2, "c"))
	u := mustSimplex(v(0, "a"), v(1, "x"), v(3, "d"))
	got := s.Intersect(u)
	if got.Dim() != 0 || !got.HasVertex(v(0, "a")) {
		t.Fatalf("Intersect = %v", got)
	}
}

func TestSimplexJoin(t *testing.T) {
	s := mustSimplex(v(0, "a"))
	u := mustSimplex(v(1, "b"))
	j, err := s.Join(u)
	if err != nil || j.Dim() != 1 {
		t.Fatalf("Join = %v, %v", j, err)
	}
	if _, err := s.Join(mustSimplex(v(0, "z"))); err == nil {
		t.Fatal("expected join conflict error")
	}
}

func TestSimplexKeyInjective(t *testing.T) {
	a := mustSimplex(v(0, "a"), v(1, "b"))
	b := mustSimplex(v(0, "a"), v(1, "c"))
	if a.Key() == b.Key() {
		t.Fatal("distinct simplexes share a key")
	}
	if !a.Equal(mustSimplex(v(1, "b"), v(0, "a"))) {
		t.Fatal("order-insensitive equality failed")
	}
}

// TestFacePropertyQuick checks, on random chromatic simplexes, that every
// face produced by dropping one vertex is a face, intersects correctly, and
// has a consistent key.
func TestFacePropertyQuick(t *testing.T) {
	prop := func(labels [5]uint8, omit uint8) bool {
		vs := make([]Vertex, 0, 5)
		for i, l := range labels {
			vs = append(vs, Vertex{P: i, Label: string(rune('a' + l%4))})
		}
		s := mustSimplex(vs...)
		i := int(omit) % len(s)
		f := s.Face(i)
		if !f.IsFaceOf(s) {
			return false
		}
		if !f.Intersect(s).Equal(f) {
			return false
		}
		return f.Key() != s.Key()
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
