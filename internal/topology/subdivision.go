package topology

// BarycentricSubdivision returns the barycentric subdivision of c together
// with the carrier map: each subdivision vertex is the barycenter of a
// simplex of c (its carrier). Subdivision vertices are colored by the
// dimension of their carrier, which is the standard chromatic structure on
// a barycentric subdivision (a chain of faces has strictly increasing
// dimensions, so every simplex of the subdivision has distinct colors).
//
// The subdivision is the combinatorial engine behind Sperner's Lemma, which
// the paper uses (via Lefschetz) to prove Theorem 9.
func BarycentricSubdivision(c *Complex) (*Complex, map[Vertex]Simplex) {
	sd := NewComplex()
	carrier := make(map[Vertex]Simplex)

	vertexFor := func(s Simplex) Vertex {
		v := Vertex{P: s.Dim(), Label: s.Key()}
		carrier[v] = s
		return v
	}

	// Enumerate maximal chains of faces under every facet; all shorter
	// chains arise as their faces via Add's closure.
	var extend func(chain []Simplex, top Simplex)
	extend = func(chain []Simplex, top Simplex) {
		if top.Dim() == 0 {
			// chain runs facet -> ... -> vertex with strictly decreasing
			// dimensions, and subdivision vertices are colored by carrier
			// dimension, so filling in reverse yields a simplex already
			// sorted by distinct process ids — no validation needed.
			vs := make(Simplex, len(chain))
			for i, s := range chain {
				vs[len(chain)-1-i] = vertexFor(s)
			}
			sd.Add(vs)
			return
		}
		for i := range top {
			f := top.Face(i)
			next := make([]Simplex, len(chain)+1)
			copy(next, chain)
			next[len(chain)] = f
			extend(next, f)
		}
	}
	for _, facet := range c.Facets() {
		extend([]Simplex{facet}, facet)
	}
	return sd, carrier
}
