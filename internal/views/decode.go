package views

import (
	"fmt"
	"strconv"
	"strings"
)

// Decode parses a canonical view encoding produced by Encode. Input values
// must not contain the reserved characters '=', '[', ']', '(', ')', ';',
// ':' or '@' (the model packages and protocols only use plain value
// strings, so this is not restrictive in practice). Decode(Encode(v))
// reconstructs a view with the same encoding.
func Decode(s string) (*View, error) {
	v, rest, err := parseView(s)
	if err != nil {
		return nil, err
	}
	if rest != "" {
		return nil, fmt.Errorf("views: trailing input %q", rest)
	}
	return v, nil
}

// parseView parses one view from the front of s.
func parseView(s string) (*View, string, error) {
	i := 0
	for i < len(s) && s[i] >= '0' && s[i] <= '9' {
		i++
	}
	if i == 0 {
		return nil, "", fmt.Errorf("views: expected process id at %q", s)
	}
	p, err := strconv.Atoi(s[:i])
	if err != nil {
		return nil, "", err
	}
	if i >= len(s) {
		return nil, "", fmt.Errorf("views: truncated view after id %d", p)
	}
	switch s[i] {
	case '=':
		// Round-0 view: input runs to the first structural delimiter of
		// the ENCLOSING view (')' or ';') or end of string.
		j := i + 1
		for j < len(s) && s[j] != ')' && s[j] != ';' {
			j++
		}
		return Initial(p, s[i+1:j]), s[j:], nil
	case '[':
		body, rest, err := balanced(s[i:], '[', ']')
		if err != nil {
			return nil, "", err
		}
		heard := make(map[int]*View)
		meta := make(map[int]string)
		for body != "" {
			entry := body
			// Entry: sender[@meta]:(view). The separator is the first
			// colon: the head holds only digits and an optional "@meta".
			colon := strings.IndexByte(entry, ':')
			if colon < 0 {
				return nil, "", fmt.Errorf("views: malformed entry %q", entry)
			}
			head := entry[:colon]
			senderStr, metaStr, hasMeta := strings.Cut(head, "@")
			sender, err := strconv.Atoi(senderStr)
			if err != nil {
				return nil, "", fmt.Errorf("views: bad sender %q", head)
			}
			if colon+1 >= len(entry) || entry[colon+1] != '(' {
				return nil, "", fmt.Errorf("views: expected '(' in entry %q", entry)
			}
			inner, after, err := balanced(entry[colon+1:], '(', ')')
			if err != nil {
				return nil, "", err
			}
			sub, leftover, err := parseView(inner)
			if err != nil {
				return nil, "", err
			}
			if leftover != "" {
				return nil, "", fmt.Errorf("views: trailing %q inside entry", leftover)
			}
			heard[sender] = sub
			if hasMeta {
				meta[sender] = metaStr
			}
			if after == "" {
				body = ""
			} else if after[0] == ';' {
				body = after[1:]
			} else {
				return nil, "", fmt.Errorf("views: expected ';' between entries, got %q", after)
			}
		}
		v := Next(p, heard)
		if len(meta) > 0 {
			v.Meta = meta
		}
		return v, rest, nil
	default:
		return nil, "", fmt.Errorf("views: unexpected %q after id %d", s[i], p)
	}
}

// balanced consumes a balanced open...close group from the front of s
// (s[0] must be open) and returns the interior and the remainder.
func balanced(s string, open, close byte) (string, string, error) {
	if len(s) == 0 || s[0] != open {
		return "", "", fmt.Errorf("views: expected %q at %q", string(open), s)
	}
	depth := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case open:
			depth++
		case close:
			depth--
			if depth == 0 {
				return s[1:i], s[i+1:], nil
			}
		}
	}
	return "", "", fmt.Errorf("views: unbalanced %q in %q", string(open), s)
}
