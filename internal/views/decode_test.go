package views

import (
	"testing"
	"testing/quick"
)

func TestDecodeRoundTripInitial(t *testing.T) {
	v := Initial(3, "hello")
	back, err := Decode(v.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if back.Encode() != v.Encode() {
		t.Fatalf("round trip: %q vs %q", back.Encode(), v.Encode())
	}
}

func TestDecodeRoundTripNested(t *testing.T) {
	a, b, c := Initial(0, "x"), Initial(1, "y"), Initial(2, "z")
	r1 := Next(0, map[int]*View{0: a, 1: b})
	r1b := Next(2, map[int]*View{1: b, 2: c})
	r2 := Next(0, map[int]*View{0: r1, 2: r1b})
	back, err := Decode(r2.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if back.Encode() != r2.Encode() {
		t.Fatalf("round trip: %q vs %q", back.Encode(), r2.Encode())
	}
	if back.Round != 2 || len(back.ValuesSeen()) != 3 {
		t.Fatalf("structure lost: round=%d values=%v", back.Round, back.ValuesSeen())
	}
}

func TestDecodeRoundTripMeta(t *testing.T) {
	a, b := Initial(0, "u"), Initial(1, "w")
	v := Next(0, map[int]*View{0: a, 1: b})
	v.Meta = map[int]string{0: "2", 1: "1"}
	back, err := Decode(v.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if back.Encode() != v.Encode() {
		t.Fatalf("round trip: %q vs %q", back.Encode(), v.Encode())
	}
	if back.Meta[1] != "1" {
		t.Fatalf("meta lost: %v", back.Meta)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"", "x", "3", "3[", "3[0:(1=a]", "3[zz:(1=a)]", "3[0:(1=a)extra]",
		"1=a trailing)",
	} {
		if _, err := Decode(bad); err == nil {
			t.Fatalf("%q accepted", bad)
		}
	}
}

// TestDecodeRoundTripQuick round-trips random small view structures.
func TestDecodeRoundTripQuick(t *testing.T) {
	prop := func(inputs [3]uint8, include [3]bool, withMeta bool) bool {
		heard := make(map[int]*View)
		for i := 0; i < 3; i++ {
			if include[i] || i == 0 {
				heard[i] = Initial(i, string(rune('a'+inputs[i]%5)))
			}
		}
		v := Next(0, heard)
		if withMeta {
			v.Meta = map[int]string{0: "3"}
		}
		back, err := Decode(v.Encode())
		return err == nil && back.Encode() == v.Encode()
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
