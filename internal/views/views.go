// Package views implements full-information local states. In every model
// the paper considers (Section 4), a process's local state is its input
// value plus the sequence of messages received so far, and the
// full-information protocol sends the entire local state in every message.
// A View is therefore a recursive structure: a round-r view maps each
// heard-from sender to that sender's round-(r-1) view.
//
// Views have canonical string encodings, which the model packages use as
// vertex labels: two global states share a vertex exactly when a process
// has the same local state in both, which is the paper's notion of
// similarity.
package views

import (
	"fmt"
	"sort"
	"strings"
)

// View is a full-information local state.
//
// A round-0 view is just the process's input. A round-r view (r >= 1)
// records, for every process heard from during round r (including the
// process itself), that sender's round-(r-1) view. Meta optionally carries
// model-specific per-sender data (e.g. the microround of the last message
// in the semi-synchronous model); it contributes to the encoding when
// present.
type View struct {
	P     int            // process id
	Input string         // input value (meaningful at round 0 and preserved upward)
	Round int            // number of completed rounds
	Heard map[int]*View  // sender -> sender's previous-round view (round >= 1)
	Meta  map[int]string // optional per-sender annotation (e.g. microround)

	enc string // memoized canonical encoding
}

// Initial returns the round-0 view of process p with the given input.
func Initial(p int, input string) *View {
	return &View{P: p, Input: input}
}

// Next returns the round-(v.Round+1) view of process p that heard the given
// predecessor views. The sender set must include p itself in all of the
// paper's models; Next does not enforce this so that adversarial variants
// can be modeled.
func Next(p int, heard map[int]*View) *View {
	v := &View{P: p, Round: 0, Heard: heard}
	for _, h := range heard {
		if h.Round+1 > v.Round {
			v.Round = h.Round + 1
		}
	}
	if self, ok := heard[p]; ok {
		v.Input = self.Input
	}
	return v
}

// Encode returns the canonical encoding of the view. Encodings are
// injective on views: equal strings imply structurally equal views.
func (v *View) Encode() string {
	if v.enc != "" {
		return v.enc
	}
	if v.Round == 0 && len(v.Heard) == 0 {
		v.enc = fmt.Sprintf("%d=%s", v.P, v.Input)
		return v.enc
	}
	senders := make([]int, 0, len(v.Heard))
	for s := range v.Heard {
		senders = append(senders, s)
	}
	sort.Ints(senders)
	parts := make([]string, len(senders))
	for i, s := range senders {
		meta := ""
		if m, ok := v.Meta[s]; ok {
			meta = "@" + m
		}
		parts[i] = fmt.Sprintf("%d%s:(%s)", s, meta, v.Heard[s].Encode())
	}
	v.enc = fmt.Sprintf("%d[%s]", v.P, strings.Join(parts, ";"))
	return v.enc
}

// ValuesSeen returns the sorted set of input values visible in the view:
// the inputs of every process whose round-0 view is reachable through the
// heard-from structure (always including the process's own input at round
// 0).
func (v *View) ValuesSeen() []string {
	set := make(map[string]bool)
	v.collectValues(set)
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

func (v *View) collectValues(into map[string]bool) {
	if v.Round == 0 && len(v.Heard) == 0 {
		into[v.Input] = true
		return
	}
	for _, h := range v.Heard {
		h.collectValues(into)
	}
}

// ProcessesSeen returns the sorted set of process ids whose states (at any
// round) appear in the view, including v.P.
func (v *View) ProcessesSeen() []int {
	set := make(map[int]bool)
	v.collectProcs(set)
	out := make([]int, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Ints(out)
	return out
}

func (v *View) collectProcs(into map[int]bool) {
	into[v.P] = true
	for _, h := range v.Heard {
		h.collectProcs(into)
	}
}

// HeardIDs returns the sorted sender set of the final round of the view.
func (v *View) HeardIDs() []int {
	out := make([]int, 0, len(v.Heard))
	for s := range v.Heard {
		out = append(out, s)
	}
	sort.Ints(out)
	return out
}

// String is Encode, for debugging.
func (v *View) String() string { return v.Encode() }
