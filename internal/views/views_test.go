package views

import (
	"testing"
	"testing/quick"
)

func TestInitialView(t *testing.T) {
	v := Initial(2, "x")
	if v.Encode() != "2=x" {
		t.Fatalf("encode = %q", v.Encode())
	}
	vals := v.ValuesSeen()
	if len(vals) != 1 || vals[0] != "x" {
		t.Fatalf("values = %v", vals)
	}
	procs := v.ProcessesSeen()
	if len(procs) != 1 || procs[0] != 2 {
		t.Fatalf("procs = %v", procs)
	}
}

func TestNextView(t *testing.T) {
	a, b := Initial(0, "u"), Initial(1, "w")
	next := Next(0, map[int]*View{0: a, 1: b})
	if next.Round != 1 {
		t.Fatalf("round = %d", next.Round)
	}
	if next.Input != "u" {
		t.Fatalf("input = %q (must be preserved from the self view)", next.Input)
	}
	vals := next.ValuesSeen()
	if len(vals) != 2 || vals[0] != "u" || vals[1] != "w" {
		t.Fatalf("values = %v", vals)
	}
	heard := next.HeardIDs()
	if len(heard) != 2 || heard[0] != 0 || heard[1] != 1 {
		t.Fatalf("heard = %v", heard)
	}
}

func TestEncodeDistinguishesStructures(t *testing.T) {
	a, b := Initial(0, "u"), Initial(1, "w")
	v1 := Next(0, map[int]*View{0: a, 1: b})
	v2 := Next(0, map[int]*View{0: a})
	if v1.Encode() == v2.Encode() {
		t.Fatal("different heard sets must encode differently")
	}
	v3 := Next(0, map[int]*View{0: a, 1: Initial(1, "z")})
	if v1.Encode() == v3.Encode() {
		t.Fatal("different predecessor inputs must encode differently")
	}
}

func TestMetaAffectsEncoding(t *testing.T) {
	a, b := Initial(0, "u"), Initial(1, "w")
	v1 := Next(0, map[int]*View{0: a, 1: b})
	v2 := Next(0, map[int]*View{0: a, 1: b})
	v2.Meta = map[int]string{1: "3"}
	if v1.Encode() == v2.Encode() {
		t.Fatal("meta annotations must affect the encoding")
	}
}

func TestMultiRoundValues(t *testing.T) {
	a, b, c := Initial(0, "0"), Initial(1, "1"), Initial(2, "2")
	r1a := Next(0, map[int]*View{0: a, 1: b})
	r1c := Next(2, map[int]*View{2: c})
	r2 := Next(0, map[int]*View{0: r1a, 2: r1c})
	if r2.Round != 2 {
		t.Fatalf("round = %d", r2.Round)
	}
	vals := r2.ValuesSeen()
	if len(vals) != 3 {
		t.Fatalf("values = %v, want all three inputs", vals)
	}
	procs := r2.ProcessesSeen()
	if len(procs) != 3 {
		t.Fatalf("procs = %v", procs)
	}
}

// TestEncodeInjectiveQuick checks on random two-process view structures
// that distinct structures encode distinctly.
func TestEncodeInjectiveQuick(t *testing.T) {
	build := func(in0, in1 uint8, hear0, hear1 bool) *View {
		a := Initial(0, string(rune('a'+in0%3)))
		b := Initial(1, string(rune('a'+in1%3)))
		heard := map[int]*View{0: a}
		if hear0 {
			heard[1] = b
		}
		v := Next(0, heard)
		if hear1 {
			v.Meta = map[int]string{0: "1"}
		}
		return v
	}
	prop := func(x, y [4]uint8) bool {
		v1 := build(x[0], x[1], x[2]%2 == 0, x[3]%2 == 0)
		v2 := build(y[0], y[1], y[2]%2 == 0, y[3]%2 == 0)
		same := x[0]%3 == y[0]%3 &&
			(x[2]%2 == y[2]%2) &&
			(x[3]%2 == y[3]%2) &&
			(x[2]%2 != 0 || x[1]%3 == y[1]%3)
		return same == (v1.Encode() == v2.Encode())
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
