package pseudosphere_test

import (
	"pseudosphere/internal/testutil"
	"pseudosphere/internal/testutil/coreutil"
)

// The shared test constructors; see internal/testutil.
var (
	mustSimplex = testutil.MustSimplex
	mustUniform = coreutil.MustUniform
)
